//! A PHP-like string-program IR.
//!
//! The paper's evaluation (§4) analyzes PHP web applications whose bugs
//! hinge on string flow: untrusted `$_GET`/`$_POST` values are filtered
//! with `preg_match`, concatenated with literals, and passed to a `query()`
//! sink (Figure 1). This IR models exactly that fragment: string
//! assignments and concatenation, regex filter guards, opaque branches,
//! `exit`, and query sinks. It is the substrate the symbolic-execution
//! front end (the analog of the paper's Wassermann–Su-based prototype) runs
//! on.

use std::fmt;

/// A string-valued expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StringExpr {
    /// A string literal, e.g. `"nid_"`.
    Literal(Vec<u8>),
    /// An untrusted request parameter, e.g. `$_POST['posted_newsid']`.
    Input(String),
    /// A program variable, e.g. `$newsid`.
    Var(String),
    /// Concatenation of parts (PHP `.`).
    Concat(Vec<StringExpr>),
    /// ASCII lower-casing (PHP `strtolower`). Per-byte case folding is an
    /// alphabetic homomorphism, so constraints through it stay decidable
    /// (see `dprle_automata::homomorphism`).
    Lower(Box<StringExpr>),
    /// ASCII upper-casing (PHP `strtoupper`).
    Upper(Box<StringExpr>),
}

impl StringExpr {
    /// Convenience constructor for a literal.
    pub fn lit(s: &str) -> StringExpr {
        StringExpr::Literal(s.as_bytes().to_vec())
    }

    /// Convenience constructor for an input parameter.
    pub fn input(name: &str) -> StringExpr {
        StringExpr::Input(name.to_owned())
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: &str) -> StringExpr {
        StringExpr::Var(name.to_owned())
    }

    /// Concatenates two expressions, flattening nested concats.
    pub fn concat(self, rhs: StringExpr) -> StringExpr {
        let mut parts = match self {
            StringExpr::Concat(p) => p,
            other => vec![other],
        };
        match rhs {
            StringExpr::Concat(p) => parts.extend(p),
            other => parts.push(other),
        }
        StringExpr::Concat(parts)
    }

    /// The set of input-parameter names mentioned (transitively through
    /// concatenation, not through variables).
    pub fn inputs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_inputs(&mut out);
        out
    }

    fn collect_inputs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            StringExpr::Input(name) => out.push(name),
            StringExpr::Literal(_) | StringExpr::Var(_) => {}
            StringExpr::Concat(parts) => {
                for p in parts {
                    p.collect_inputs(out);
                }
            }
            StringExpr::Lower(inner) | StringExpr::Upper(inner) => inner.collect_inputs(out),
        }
    }
}

impl fmt::Display for StringExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StringExpr::Literal(bytes) => write!(f, "{:?}", String::from_utf8_lossy(bytes)),
            StringExpr::Input(name) => write!(f, "$_REQUEST[{name}]"),
            StringExpr::Var(name) => write!(f, "${name}"),
            StringExpr::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " . ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            StringExpr::Lower(inner) => write!(f, "strtolower({inner})"),
            StringExpr::Upper(inner) => write!(f, "strtoupper({inner})"),
        }
    }
}

/// A branch condition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cond {
    /// `preg_match(pattern, subject)` — true iff the pattern matches
    /// somewhere in the subject (PCRE search semantics).
    PregMatch {
        /// The regex pattern (without delimiters).
        pattern: String,
        /// The subject expression.
        subject: StringExpr,
    },
    /// String equality against a literal.
    EqualsLiteral {
        /// The subject expression.
        subject: StringExpr,
        /// The literal compared against.
        literal: Vec<u8>,
    },
    /// Negation.
    Not(Box<Cond>),
    /// A condition the string analysis cannot interpret (integer compares,
    /// database state, …). Both branches are considered feasible and no
    /// string constraint is recorded.
    Opaque(String),
}

impl Cond {
    /// Negates the condition (collapsing double negation).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Not(inner) => *inner,
            other => Cond::Not(Box::new(other)),
        }
    }
}

/// A statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// `$var = expr;`
    Assign {
        /// Variable being assigned.
        var: String,
        /// Value expression.
        value: StringExpr,
    },
    /// `if (cond) { then } else { els }`
    If {
        /// The branch condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        els: Vec<Stmt>,
    },
    /// `while (cond) { body }` — analyzed by bounded unrolling (see
    /// `symex::SymexOptions::max_loop_unroll`).
    While {
        /// The loop condition.
        cond: Cond,
        /// The loop body.
        body: Vec<Stmt>,
    },
    /// `exit;` — terminates the program (the paper's Figure 1, line 4).
    Exit,
    /// `query(expr);` — the security-sensitive database sink.
    Query {
        /// The query-string expression.
        expr: StringExpr,
    },
    /// `echo expr;` — an uninteresting effect, kept to make programs
    /// realistically sized.
    Echo {
        /// The echoed expression.
        expr: StringExpr,
    },
}

/// A whole program (one PHP file in the paper's data set).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Source-file name, e.g. `"usr_reg"`.
    pub name: String,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program named `name`.
    pub fn new(name: &str) -> Program {
        Program {
            name: name.to_owned(),
            stmts: Vec::new(),
        }
    }

    /// Total number of statements, including nested branch bodies (a rough
    /// LOC analog for generated programs).
    pub fn num_statements(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then, els, .. } => 1 + count(then) + count(els),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// The paper's Figure 1 program (Utopia News Pro fragment): the faulty
    /// `preg_match('/[\d]+$/', …)` filter followed by a vulnerable query.
    pub fn figure1() -> Program {
        Program {
            name: "utopia_figure1".to_owned(),
            stmts: vec![
                Stmt::Assign {
                    var: "newsid".to_owned(),
                    value: StringExpr::input("posted_newsid"),
                },
                Stmt::If {
                    cond: Cond::PregMatch {
                        pattern: "[\\d]+$".to_owned(),
                        subject: StringExpr::var("newsid"),
                    }
                    .negate(),
                    then: vec![
                        Stmt::Echo {
                            expr: StringExpr::lit("Invalid article news ID."),
                        },
                        Stmt::Exit,
                    ],
                    els: vec![],
                },
                Stmt::Assign {
                    var: "newsid".to_owned(),
                    value: StringExpr::lit("nid_").concat(StringExpr::var("newsid")),
                },
                Stmt::Query {
                    expr: StringExpr::lit("SELECT * FROM news WHERE newsid=")
                        .concat(StringExpr::var("newsid")),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens() {
        let e = StringExpr::lit("a")
            .concat(StringExpr::lit("b"))
            .concat(StringExpr::var("x").concat(StringExpr::lit("c")));
        match &e {
            StringExpr::Concat(parts) => assert_eq!(parts.len(), 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inputs_are_collected() {
        let e = StringExpr::input("a")
            .concat(StringExpr::lit("x"))
            .concat(StringExpr::input("b"));
        assert_eq!(e.inputs(), vec!["a", "b"]);
        assert!(StringExpr::var("v").inputs().is_empty());
    }

    #[test]
    fn negate_collapses_double_negation() {
        let c = Cond::Opaque("p".to_owned());
        let n = c.clone().negate();
        assert!(matches!(n, Cond::Not(_)));
        assert_eq!(n.negate(), c);
    }

    #[test]
    fn figure1_program_shape() {
        let p = Program::figure1();
        assert_eq!(p.stmts.len(), 4);
        assert!(p.num_statements() > 4, "nested statements counted");
        assert!(matches!(p.stmts.last(), Some(Stmt::Query { .. })));
    }

    #[test]
    fn display_is_php_ish() {
        let e = StringExpr::lit("nid_").concat(StringExpr::var("newsid"));
        assert_eq!(e.to_string(), "\"nid_\" . $newsid");
        assert_eq!(StringExpr::input("x").to_string(), "$_REQUEST[x]");
    }
}
