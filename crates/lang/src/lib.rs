//! # dprle-lang
//!
//! The program-analysis front end of the DPRLE reproduction: a PHP-like
//! string IR, control-flow graphs, path-sensitive symbolic execution, and a
//! SQL-injection analysis that phrases each query sink as a DPRLE
//! constraint system and solves it for concrete exploit inputs — the role
//! the paper's Wassermann–Su-based prototype plays in its §4 evaluation.
//!
//! ## Pipeline
//!
//! ```text
//! Program (ast) ──► Cfg (|FG| metric)
//!        │
//!        └──► symex::explore ──► SinkReach* ──► analysis::to_system (|C|)
//!                                                    │
//!                                              dprle_core::solve
//!                                                    │
//!                                       Finding { exploit witnesses }
//! ```
//!
//! ## Example
//!
//! ```
//! use dprle_lang::{analyze, Policy, Program};
//! use dprle_lang::symex::SymexOptions;
//! use dprle_core::SolveOptions;
//!
//! let report = analyze(
//!     &Program::figure1(),                // the paper's vulnerable fragment
//!     &Policy::sql_quote(),
//!     &SymexOptions::default(),
//!     &SolveOptions::default(),
//! )?;
//! let exploit = &report.findings[0].witnesses["posted_newsid"];
//! assert!(exploit.contains(&b'\''));
//! # Ok::<(), dprle_lang::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod cfg;
pub mod interp;
pub mod php;
pub mod slice;
pub mod symex;

pub use analysis::{
    analyze, analyze_reach, analyze_sinks, build_system, to_system, try_analyze_reach,
    AnalysisError, AnalysisReport, Finding, GeneratedSystem, InputBinding, Policy,
};
pub use ast::{Cond, Program, Stmt, StringExpr};
pub use cfg::{BlockId, Cfg};
pub use interp::{run, run_with_oracle, InterpError, RunResult};
pub use php::{parse_php, print_php, ParsePhpError};
pub use slice::{slice_for_sink, Slice, SliceLine};
pub use symex::{explore, SinkKind, SinkReach, SymValue, SymexError, SymexOptions};
