//! A concrete interpreter for the string IR.
//!
//! Exploit generation is only convincing if the exploit *runs*: this
//! interpreter executes a [`Program`] on concrete request parameters and
//! records every executed `query()` and `echo`. The test suite replays
//! every generated witness through its program and asserts the observed
//! sink value violates the policy — the ground-truth check the paper's
//! "testcase generation" story implies.

use crate::ast::{Cond, Program, Stmt, StringExpr};
use dprle_automata::ByteMap;
use dprle_regex::Regex;
use std::collections::HashMap;
use std::fmt;

/// The observable effects of one concrete run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Query strings sent to the database, in order.
    pub queries: Vec<Vec<u8>>,
    /// Echoed output, concatenated in order.
    pub echoes: Vec<Vec<u8>>,
    /// Whether the program ended via `exit`.
    pub exited: bool,
}

impl RunResult {
    /// Whether any executed query contains `byte`.
    pub fn any_query_contains(&self, byte: u8) -> bool {
        self.queries.iter().any(|q| q.contains(&byte))
    }
}

/// Concrete loop-iteration cap: a program spinning past this is reported
/// as an error rather than hanging the test suite.
const MAX_LOOP_ITERATIONS: usize = 100_000;

/// Errors during concrete execution.
#[derive(Clone, Debug)]
pub enum InterpError {
    /// A `preg_match` pattern failed to compile.
    BadPattern {
        /// The offending pattern.
        pattern: String,
        /// The underlying error.
        error: dprle_regex::ParseRegexError,
    },
    /// An opaque condition was reached; concrete execution cannot decide it.
    OpaqueCondition {
        /// The condition's description.
        description: String,
    },
    /// A `while` loop exceeded the iteration cap.
    LoopBound,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::BadPattern { pattern, error } => {
                write!(f, "pattern /{pattern}/ failed to compile: {error}")
            }
            InterpError::OpaqueCondition { description } => {
                write!(f, "cannot concretely evaluate unknown({description})")
            }
            InterpError::LoopBound => write!(f, "loop exceeded the iteration cap"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Executes `program` with the given request parameters (missing
/// parameters read as the empty string, as PHP superglobals do).
///
/// # Errors
///
/// Fails on malformed patterns or when execution reaches an opaque
/// condition (use [`run_with_oracle`] to decide those).
pub fn run(program: &Program, inputs: &HashMap<String, Vec<u8>>) -> Result<RunResult, InterpError> {
    run_with_oracle(program, inputs, &mut |_| None)
}

/// Like [`run`], with an oracle deciding opaque conditions: return
/// `Some(bool)` to choose a branch, `None` to fail on that condition.
pub fn run_with_oracle(
    program: &Program,
    inputs: &HashMap<String, Vec<u8>>,
    oracle: &mut dyn FnMut(&str) -> Option<bool>,
) -> Result<RunResult, InterpError> {
    let mut interp = Interp {
        inputs,
        env: HashMap::new(),
        result: RunResult::default(),
        oracle,
    };
    interp.block(&program.stmts)?;
    Ok(interp.result)
}

struct Interp<'a> {
    inputs: &'a HashMap<String, Vec<u8>>,
    env: HashMap<String, Vec<u8>>,
    result: RunResult,
    oracle: &'a mut dyn FnMut(&str) -> Option<bool>,
}

enum Flow {
    Continue,
    Exit,
}

impl Interp<'_> {
    fn block(&mut self, stmts: &[Stmt]) -> Result<Flow, InterpError> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { var, value } => {
                    let v = self.eval(value);
                    self.env.insert(var.clone(), v);
                }
                Stmt::Echo { expr } => {
                    let v = self.eval(expr);
                    self.result.echoes.push(v);
                }
                Stmt::Query { expr } => {
                    let v = self.eval(expr);
                    self.result.queries.push(v);
                }
                Stmt::Exit => {
                    self.result.exited = true;
                    return Ok(Flow::Exit);
                }
                Stmt::If { cond, then, els } => {
                    let taken = if self.cond(cond)? { then } else { els };
                    if let Flow::Exit = self.block(taken)? {
                        return Ok(Flow::Exit);
                    }
                }
                Stmt::While { cond, body } => {
                    let mut iterations = 0usize;
                    while self.cond(cond)? {
                        iterations += 1;
                        if iterations > MAX_LOOP_ITERATIONS {
                            return Err(InterpError::LoopBound);
                        }
                        if let Flow::Exit = self.block(body)? {
                            return Ok(Flow::Exit);
                        }
                    }
                }
            }
        }
        Ok(Flow::Continue)
    }

    fn cond(&mut self, cond: &Cond) -> Result<bool, InterpError> {
        match cond {
            Cond::Not(inner) => Ok(!self.cond(inner)?),
            Cond::PregMatch { pattern, subject } => {
                let subject = self.eval(subject);
                let re = Regex::new(pattern).map_err(|error| InterpError::BadPattern {
                    pattern: pattern.clone(),
                    error,
                })?;
                Ok(re.is_match(&subject))
            }
            Cond::EqualsLiteral { subject, literal } => Ok(self.eval(subject) == *literal),
            Cond::Opaque(description) => {
                (self.oracle)(description).ok_or_else(|| InterpError::OpaqueCondition {
                    description: description.clone(),
                })
            }
        }
    }

    fn eval(&self, expr: &StringExpr) -> Vec<u8> {
        match expr {
            StringExpr::Literal(bytes) => bytes.clone(),
            StringExpr::Input(name) => self.inputs.get(name).cloned().unwrap_or_default(),
            StringExpr::Var(name) => self.env.get(name).cloned().unwrap_or_default(),
            StringExpr::Concat(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.eval(p));
                }
                out
            }
            StringExpr::Lower(inner) => ByteMap::to_lowercase().map_bytes(&self.eval(inner)),
            StringExpr::Upper(inner) => ByteMap::to_uppercase().map_bytes(&self.eval(inner)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Policy};
    use crate::symex::SymexOptions;
    use dprle_core::SolveOptions;

    fn inputs(pairs: &[(&str, &[u8])]) -> HashMap<String, Vec<u8>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_vec()))
            .collect()
    }

    #[test]
    fn figure1_concrete_runs() {
        let p = Program::figure1();
        // Benign input: the query runs with the prefixed value.
        let ok = run(&p, &inputs(&[("posted_newsid", b"42")])).expect("runs");
        assert!(!ok.exited);
        assert_eq!(ok.queries.len(), 1);
        assert_eq!(
            ok.queries[0],
            b"SELECT * FROM news WHERE newsid=nid_42".to_vec()
        );
        // Input failing the filter: rejected before the query.
        let rejected = run(&p, &inputs(&[("posted_newsid", b"abc")])).expect("runs");
        assert!(rejected.exited);
        assert!(rejected.queries.is_empty());
        assert_eq!(rejected.echoes.len(), 1);
    }

    #[test]
    fn generated_exploits_replay_end_to_end() {
        // The decisive check: run the *actual program* on the generated
        // witness and observe the subverted query.
        let p = Program::figure1();
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        let witness = report.findings[0].witnesses["posted_newsid"].clone();
        let result = run(&p, &inputs(&[("posted_newsid", &witness)])).expect("runs");
        assert!(!result.exited, "exploit must survive the filter");
        assert!(result.any_query_contains(b'\''), "query must be subverted");
    }

    #[test]
    fn missing_inputs_read_as_empty() {
        let p = Program::figure1();
        let result = run(&p, &HashMap::new()).expect("runs");
        // Empty string fails /[\d]+$/ → exit.
        assert!(result.exited);
    }

    #[test]
    fn case_functions_evaluate() {
        use crate::ast::Stmt;
        let mut p = Program::new("case");
        p.stmts.push(Stmt::Query {
            expr: StringExpr::Lower(Box::new(StringExpr::input("x")))
                .concat(StringExpr::Upper(Box::new(StringExpr::lit("up")))),
        });
        let result = run(&p, &inputs(&[("x", b"MiXeD")])).expect("runs");
        assert_eq!(result.queries[0], b"mixedUP".to_vec());
    }

    #[test]
    fn opaque_conditions_need_an_oracle() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("opaque");
        p.stmts.push(Stmt::If {
            cond: Cond::Opaque("coin".into()),
            then: vec![Stmt::Echo {
                expr: StringExpr::lit("heads"),
            }],
            els: vec![Stmt::Echo {
                expr: StringExpr::lit("tails"),
            }],
        });
        assert!(matches!(
            run(&p, &HashMap::new()),
            Err(InterpError::OpaqueCondition { .. })
        ));
        let mut take_true = |_: &str| Some(true);
        let result = run_with_oracle(&p, &HashMap::new(), &mut take_true).expect("runs");
        assert_eq!(result.echoes, vec![b"heads".to_vec()]);
    }

    #[test]
    fn equality_conditions_evaluate() {
        use crate::ast::{Cond, Stmt};
        let mut p = Program::new("eq");
        p.stmts.push(Stmt::If {
            cond: Cond::EqualsLiteral {
                subject: StringExpr::input("mode"),
                literal: b"admin".to_vec(),
            },
            then: vec![Stmt::Query {
                expr: StringExpr::lit("admin query"),
            }],
            els: vec![Stmt::Query {
                expr: StringExpr::lit("user query"),
            }],
        });
        let admin = run(&p, &inputs(&[("mode", b"admin")])).expect("runs");
        assert_eq!(admin.queries[0], b"admin query".to_vec());
        let user = run(&p, &inputs(&[("mode", b"guest")])).expect("runs");
        assert_eq!(user.queries[0], b"user query".to_vec());
    }
}
