//! `while` loops across the whole stack: parsing, printing, CFG shape,
//! bounded symbolic execution, concrete interpretation, and analysis of a
//! loop-built query.

use dprle_core::SolveOptions;
use dprle_lang::symex::SymexOptions;
use dprle_lang::{
    analyze, explore, parse_php, print_php, run, run_with_oracle, Cfg, Cond, Policy, Program, Stmt,
    StringExpr,
};
use std::collections::HashMap;

const LOOPY: &str = r#"<?php
$q = "SELECT id FROM t WHERE 1=1";
while (unknown("more clauses")) {
    $q = $q . " AND col=" . $_GET['clause'];
}
query($q);
"#;

#[test]
fn parse_print_roundtrip() {
    let program = parse_php("loopy", LOOPY).expect("parses");
    assert!(matches!(program.stmts[1], Stmt::While { .. }));
    let reparsed = parse_php("loopy", &print_php(&program)).expect("round-trips");
    assert_eq!(program, reparsed);
}

#[test]
fn cfg_has_a_back_edge() {
    let program = parse_php("loopy", LOOPY).expect("parses");
    let cfg = Cfg::build(&program);
    // head, body, exit blocks exist beyond entry/synthetic-exit.
    assert!(cfg.num_blocks() >= 5, "{}", cfg.num_blocks());
    // There is a cycle: some block's successor list reaches an
    // earlier-or-equal block id (the loop head).
    let back_edge = cfg
        .blocks()
        .iter()
        .enumerate()
        .any(|(i, b)| b.successors.iter().any(|s| (s.0 as usize) <= i));
    assert!(back_edge, "loop must produce a back edge");
}

#[test]
fn symbolic_execution_unrolls_to_the_bound() {
    let program = parse_php("loopy", LOOPY).expect("parses");
    let options = SymexOptions {
        max_loop_unroll: 2,
        ..Default::default()
    };
    let reaches = explore(&program, &options).expect("explores");
    // Iterations 0, 1, 2 each reach the sink once.
    assert_eq!(reaches.len(), 3);
    // The deepest unrolling mentions the input twice… each unrolled body
    // appends one clause, so atom counts grow with the iteration count.
    let mut sizes: Vec<usize> = reaches.iter().map(|r| r.query.atoms.len()).collect();
    sizes.sort_unstable();
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
}

#[test]
fn loop_built_query_is_exploitable_and_replays() {
    let program = parse_php("loopy", LOOPY).expect("parses");
    let report = analyze(
        &program,
        &Policy::sql_quote(),
        &SymexOptions {
            max_loop_unroll: 2,
            ..Default::default()
        },
        &SolveOptions::default(),
    )
    .expect("analyzes");
    // The zero-iteration path is safe (constant query); the unrolled paths
    // inject through $_GET['clause'].
    assert!(report.findings.len() >= 2, "{}", report.findings.len());
    assert!(report.safe_sinks >= 1);
    let finding = &report.findings[0];
    let exploit = finding.witnesses.get("clause").expect("witness");
    assert!(exploit.contains(&b'\''));

    // Concrete replay: drive the loop once via the oracle.
    let mut first = true;
    let mut oracle = |_: &str| {
        let take = first;
        first = false;
        Some(take)
    };
    let inputs: HashMap<String, Vec<u8>> = [("clause".to_string(), exploit.clone())]
        .into_iter()
        .collect();
    let result = run_with_oracle(&program, &inputs, &mut oracle).expect("runs");
    assert!(result.any_query_contains(b'\''));
}

#[test]
fn interpreter_runs_loops_concretely() {
    // while ($x == "go") { echo "tick"; $x = "stop"; }
    let mut p = Program::new("tick");
    p.stmts.push(Stmt::Assign {
        var: "x".into(),
        value: StringExpr::lit("go"),
    });
    p.stmts.push(Stmt::While {
        cond: Cond::EqualsLiteral {
            subject: StringExpr::var("x"),
            literal: b"go".to_vec(),
        },
        body: vec![
            Stmt::Echo {
                expr: StringExpr::lit("tick"),
            },
            Stmt::Assign {
                var: "x".into(),
                value: StringExpr::lit("stop"),
            },
        ],
    });
    let result = run(&p, &HashMap::new()).expect("runs");
    assert_eq!(result.echoes, vec![b"tick".to_vec()]);
}

#[test]
fn interpreter_caps_runaway_loops() {
    // while ($x == "") { echo "spin"; } — x stays "" forever.
    let mut p = Program::new("spin");
    p.stmts.push(Stmt::While {
        cond: Cond::EqualsLiteral {
            subject: StringExpr::var("x"),
            literal: Vec::new(),
        },
        body: vec![Stmt::Echo {
            expr: StringExpr::lit("spin"),
        }],
    });
    assert!(matches!(
        run(&p, &HashMap::new()),
        Err(dprle_lang::InterpError::LoopBound)
    ));
}

#[test]
fn num_statements_counts_loop_bodies() {
    let program = parse_php("loopy", LOOPY).expect("parses");
    assert_eq!(program.num_statements(), 4); // assign, while, inner assign, query
}
