//! Crate-level pipeline tests: PHP source → parse → CFG/symex → analysis →
//! interpreter replay, all through the public API.

use dprle_core::SolveOptions;
use dprle_lang::symex::SymexOptions;
use dprle_lang::{analyze, parse_php, print_php, run, Cfg, Policy, Program};
use std::collections::HashMap;

/// A small "application" with two inputs, a case-folded check, an equality
/// gate, and two sinks on different paths.
const APP: &str = r#"<?php
$user = $_GET['user'];
$mode = $_POST['mode'];
if (!preg_match('/^[a-zA-Z0-9_\']{1,16}$/', $user)) {
    echo 'bad user';
    exit;
}
if ($mode == "admin") {
    query("SELECT * FROM admin WHERE u='" . strtolower($_POST['target']) . "'");
} else {
    query("SELECT * FROM users WHERE name=" . $user);
}
"#;

#[test]
fn whole_application_analysis() {
    let program = parse_php("app", APP).expect("parses");
    let cfg = Cfg::build(&program);
    assert!(
        cfg.num_blocks() >= 6,
        "branchy program: {}",
        cfg.num_blocks()
    );

    let report = analyze(
        &program,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )
    .expect("analyzes");
    // Both sinks are exploitable: the admin one through strtolower (quotes
    // survive case folding), the user one through the filter's ' allowance.
    assert_eq!(report.total_sinks, 2);
    assert_eq!(report.findings.len(), 2, "both paths exploitable");

    for finding in &report.findings {
        // Replay each finding concretely: decide the mode gate from the
        // witnesses themselves.
        let mut inputs: HashMap<String, Vec<u8>> = finding
            .witnesses
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        // The filter requires `user` even on the admin path.
        inputs
            .entry("user".to_owned())
            .or_insert_with(|| b"x".to_vec());
        let result = run(&program, &inputs).expect("runs");
        assert!(
            !result.exited,
            "sink {} exploit must reach the query",
            finding.sink_index
        );
        assert!(
            result.any_query_contains(b'\''),
            "sink {} query must carry a quote",
            finding.sink_index
        );
    }
}

#[test]
fn roundtrip_through_printer_preserves_findings() {
    let program = parse_php("app", APP).expect("parses");
    let reprinted = print_php(&program);
    let reparsed = parse_php("app", &reprinted).expect("round-trips");
    assert_eq!(program, reparsed);
    let a = analyze(
        &program,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )
    .expect("analyzes");
    let b = analyze(
        &reparsed,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )
    .expect("analyzes");
    assert_eq!(a.findings.len(), b.findings.len());
}

#[test]
fn hardened_application_is_safe() {
    // Harden both sinks: a strict user filter and a quote-rejecting guard
    // on the admin target.
    let hardened = APP
        .replace("[a-zA-Z0-9_\\']{1,16}", "[a-zA-Z0-9_]{1,16}")
        .replace(
            "query(\"SELECT * FROM admin WHERE u='\" . strtolower($_POST['target']) . \"'\");",
            "if (preg_match('/\\'/', $_POST['target'])) { exit; }\n    query(\"SELECT * FROM admin WHERE u='\" . strtolower($_POST['target']) . \"'\");",
        );
    let program = parse_php("hardened", &hardened).expect("parses");
    let report = analyze(
        &program,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )
    .expect("analyzes");
    assert_eq!(report.findings.len(), 0, "hardened app has no findings");
    assert_eq!(report.safe_sinks, report.total_sinks);
}

#[test]
fn figure1_matches_builtin_constructor() {
    // The checked-in testdata file parses to the same program as the
    // built-in constructor.
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../testdata/figure1.php"),
    )
    .expect("testdata present");
    let parsed = parse_php("utopia_figure1", &source).expect("parses");
    assert_eq!(parsed, Program::figure1());
}
