//! End-to-end tests driving the compiled `dprle` and `dprle-analyze`
//! binaries as a user would.

use std::io::Write as _;
use std::process::{Command, Output};

fn dprle(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dprle"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn dprle_analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dprle-analyze"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("dprle_cli_test_{name}"));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const MOTIVATING: &str = r#"
var v1;
c1 := match(/[\d]+$/);
c2 := "nid_";
c3 := match(/'/);
v1 <= c1;
c2 . v1 <= c3;
"#;

#[test]
fn solver_finds_the_exploit() {
    let file = temp_file("motivating.dprle", MOTIVATING);
    let out = dprle(&["--witness", file.to_str().expect("utf8 path")]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sat: 1 disjunctive assignment"), "{stdout}");
    assert!(stdout.contains("v1 = "), "{stdout}");
    assert!(stdout.contains('\''), "witness carries the quote: {stdout}");
}

#[test]
fn solver_reports_unsat_with_exit_code_one() {
    let file = temp_file(
        "unsat.dprle",
        "var v;\na := /a/;\nb := /b/;\nv <= a;\nv <= b;\n",
    );
    let out = dprle(&[file.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("unsat"));
}

#[test]
fn solver_rejects_bad_files_with_exit_code_two() {
    let file = temp_file("bad.dprle", "this is not a constraint file");
    let out = dprle(&[file.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
    let missing = dprle(&["/nonexistent/path.dprle"]);
    assert_eq!(missing.status.code(), Some(2));
    let no_args = dprle(&[]);
    assert_eq!(no_args.status.code(), Some(2));
}

#[test]
fn solver_emits_dot_graph() {
    let file = temp_file("dot.dprle", MOTIVATING);
    let out = dprle(&["--dot-graph", file.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("v1"), "{stdout}");
}

const MOTIVATING_SMT: &str = r#"
(set-logic QF_S)
(declare-const v1 String)
(assert (str.in_re v1 (re.++ re.all (re.+ (re.range "0" "9")))))
(assert (str.in_re (str.++ "nid_" v1)
                   (re.++ re.all (str.to_re "'") re.all)))
(check-sat)
(get-model)
"#;

#[test]
fn solver_accepts_smtlib_scripts() {
    let file = temp_file("motivating.smt2", MOTIVATING_SMT);
    let out = dprle(&[file.to_str().expect("utf8 path")]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("sat"), "{stdout}");
    assert!(stdout.contains("define-fun v1"), "{stdout}");
    assert!(stdout.contains('\''), "{stdout}");
}

#[test]
fn solver_rejects_bad_smtlib() {
    let file = temp_file("bad.smt2", "(assert (str.in_re undeclared re.all))");
    let out = dprle(&[file.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(2));
}

const FIGURE1_PHP: &str = r#"<?php
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    echo 'Invalid article news ID.';
    exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
"#;

#[test]
fn analyzer_reports_vulnerability_with_slice() {
    let file = temp_file("figure1.php", FIGURE1_PHP);
    let out = dprle_analyze(&["--slice", "--show-query", file.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1), "vulnerable exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VULNERABLE"), "{stdout}");
    assert!(stdout.contains("posted_newsid"), "{stdout}");
    assert!(stdout.contains("slice:"), "{stdout}");
    assert!(stdout.contains("preg_match"), "{stdout}");
}

#[test]
fn analyzer_reports_safe_for_fixed_filter() {
    let fixed = FIGURE1_PHP.replace("/[\\d]+$/", "/^[\\d]+$/");
    let file = temp_file("figure1_fixed.php", &fixed);
    let out = dprle_analyze(&[file.to_str().expect("utf8")]);
    assert!(out.status.success(), "safe exit code");
    assert!(String::from_utf8_lossy(&out.stdout).contains("SAFE"));
}

#[test]
fn analyzer_prints_alternatives() {
    let file = temp_file("figure1_alt.php", FIGURE1_PHP);
    let out = dprle_analyze(&["--alternatives", "3", file.to_str().expect("utf8")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("alternative 1:"), "{stdout}");
    assert!(stdout.contains("alternative 2:"), "{stdout}");
}

#[test]
fn analyzer_rejects_unparseable_php() {
    let file = temp_file("bad.php", "<?php for(;;) {}");
    let out = dprle_analyze(&[file.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyzer_xss_policy_on_echo_sinks() {
    let file = temp_file(
        "xss.php",
        "<?php\n$msg = $_GET['msg'];\necho \"<div>\" . $msg . \"</div>\";\n",
    );
    let out = dprle_analyze(&["--policy", "xss", file.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VULNERABLE"), "{stdout}");
    assert!(stdout.contains("<script"), "{stdout}");
}

#[test]
fn solver_prints_unsat_core() {
    let file = temp_file(
        "core.dprle",
        "var v w;\na := /a/;\nb := /b/;\nok := /x*/;\nv <= a;\nw <= ok;\nv <= b;\n",
    );
    let out = dprle(&["--core", file.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unsat core (2 constraints)"), "{stdout}");
    assert!(stdout.contains("v <= a"), "{stdout}");
    assert!(!stdout.contains("w <= ok"), "{stdout}");
}

fn repo_schema_path() -> String {
    format!(
        "{}/../../docs/trace.schema.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn trace_out_journal_is_schema_valid_and_counts_disjuncts() {
    let file = temp_file("trace_out.dprle", MOTIVATING);
    let journal = std::env::temp_dir().join("dprle_cli_test_trace_out.jsonl");
    let out = dprle(&[
        "--trace-out",
        journal.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let reported: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("sat: "))
        .and_then(|rest| rest.split_whitespace().next())
        .expect("sat line")
        .parse()
        .expect("assignment count");
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    let valid = dprle_core::validate_jsonl(dprle_core::TRACE_SCHEMA, &jsonl).expect("schema-valid");
    assert!(valid > 0, "journal is non-empty");
    let disjuncts = jsonl
        .lines()
        .filter(|l| l.contains("\"kind\":\"GciDisjunct\""))
        .count();
    assert_eq!(
        disjuncts, reported,
        "one GciDisjunct event per reported disjunctive assignment\n{jsonl}"
    );
}

#[test]
fn trace_report_prints_phase_table_and_checks_schema() {
    let file = temp_file("trace_report.dprle", MOTIVATING);
    let journal = std::env::temp_dir().join("dprle_cli_test_trace_report.jsonl");
    let out = dprle(&[
        "--trace-out",
        journal.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    let schema = repo_schema_path();
    let out = dprle(&[
        "trace-report",
        "--check-schema",
        &schema,
        journal.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("events valid"), "{stdout}");
    assert!(stdout.contains("per-phase wall time"), "{stdout}");
    for phase in ["solve", "reduce", "gci"] {
        assert!(stdout.contains(phase), "phase {phase} missing: {stdout}");
    }
}

#[test]
fn trace_report_rejects_journals_that_violate_the_schema() {
    let bogus = temp_file(
        "bogus_trace.jsonl",
        "{\"seq\":0,\"ts_us\":1,\"kind\":\"NotARealEvent\"}\n",
    );
    let schema = repo_schema_path();
    let out = dprle(&[
        "trace-report",
        "--check-schema",
        &schema,
        bogus.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema violation"));
}

#[test]
fn trace_summary_prints_phase_table_to_stderr() {
    let file = temp_file("trace_summary.dprle", MOTIVATING);
    let out = dprle(&["--trace=summary", file.to_str().expect("utf8 path")]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace: per-phase wall time"), "{stderr}");
    assert!(stderr.contains("memo cache:"), "{stderr}");
}

#[test]
fn trace_dot_writes_provenance_graph() {
    let file = temp_file("trace_dot.dprle", MOTIVATING);
    let dot_path = std::env::temp_dir().join("dprle_cli_test_provenance.dot");
    let out = dprle(&[
        "--trace-dot",
        dot_path.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    let dot = std::fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot.starts_with("digraph solver_provenance"), "{dot}");
    assert!(dot.contains("visit(s)"), "{dot}");
}

#[test]
fn stats_are_printed_even_when_unsat() {
    let file = temp_file(
        "unsat_stats.dprle",
        "var v;\na := /a/;\nb := /b/;\nv <= a;\nv <= b;\n",
    );
    let out = dprle(&["--stats", file.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stats: groups: 0"), "{stderr}");
    assert!(stderr.contains("stats: branches-filtered: 1"), "{stderr}");
}

#[test]
fn stats_and_tracing_work_for_smtlib_scripts() {
    let file = temp_file("stats.smt2", MOTIVATING_SMT);
    let journal = std::env::temp_dir().join("dprle_cli_test_smt_trace.jsonl");
    let out = dprle(&[
        "--stats",
        "--trace-out",
        journal.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stats: groups:"), "{stderr}");
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    dprle_core::validate_jsonl(dprle_core::TRACE_SCHEMA, &jsonl).expect("schema-valid");
    assert!(jsonl.contains("\"kind\":\"SolveStart\""), "{jsonl}");
}

#[test]
fn analyzer_unroll_bound_controls_loop_findings() {
    let file = temp_file(
        "loop.php",
        "<?php\n$q = \"SELECT 1\";\nwhile (unknown(\"more\")) {\n    $q = $q . $_GET['x'];\n}\nquery($q);\n",
    );
    // With zero unrolling only the constant query remains: safe.
    let out = dprle_analyze(&["--unroll", "0", file.to_str().expect("utf8")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // With the default bound the loop body injects.
    let out = dprle_analyze(&[file.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn trace_report_errors_on_empty_journal() {
    // An interrupted run can leave a zero-byte journal behind; a "0
    // events" report used to exit 0 and silently bless it.
    let empty = temp_file("empty_trace.jsonl", "");
    let out = dprle(&["trace-report", empty.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(stderr.contains("empty"), "{stderr}");
    // Whitespace-only is the same condition.
    let blank = temp_file("blank_trace.jsonl", "\n\n");
    let out = dprle(&["trace-report", blank.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_report_errors_on_truncated_journal_with_line_number() {
    let file = temp_file("trunc_src.dprle", MOTIVATING);
    let journal = std::env::temp_dir().join("dprle_cli_test_trunc_trace.jsonl");
    let out = dprle(&[
        "--trace-out",
        journal.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    // Chop the journal mid-record, as a crashed producer would.
    let jsonl = std::fs::read_to_string(&journal).expect("journal written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 2, "journal has several events");
    let last = lines.len() - 1;
    let truncated = format!(
        "{}\n{}\n",
        lines[..last].join("\n"),
        &lines[last][..lines[last].len() / 2]
    );
    let trunc = temp_file("trunc_trace.jsonl", &truncated);
    let out = dprle(&["trace-report", trunc.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("line {}", last + 1)),
        "error names the broken line: {stderr}"
    );
}

#[test]
fn metrics_report_errors_on_empty_and_truncated_snapshots() {
    let empty = temp_file("empty_metrics.jsonl", "");
    let out = dprle(&["metrics-report", empty.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(stderr.contains("empty"), "{stderr}");

    let file = temp_file("trunc_metrics_src.dprle", MOTIVATING);
    let snapshot_path = std::env::temp_dir().join("dprle_cli_test_trunc_metrics.jsonl");
    let out = dprle(&[
        "--metrics-out",
        snapshot_path.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    let jsonl = std::fs::read_to_string(&snapshot_path).expect("snapshot written");
    let trunc = temp_file("trunc_metrics.jsonl", &jsonl[..jsonl.len() / 2]);
    let out = dprle(&["metrics-report", trunc.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line"),
        "truncated snapshot error names a line: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn repo_ledger_schema_path() -> String {
    format!(
        "{}/../../docs/ledger.schema.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn ledger_out_is_schema_valid_and_profile_views_render() {
    let file = temp_file("ledger_out.dprle", MOTIVATING);
    let ledger = std::env::temp_dir().join("dprle_cli_test_ledger_out.jsonl");
    let out = dprle(&[
        "--ledger-out",
        ledger.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let schema = repo_ledger_schema_path();
    let out = dprle(&[
        "profile",
        "check",
        "--schema",
        &schema,
        ledger.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("records valid"));

    let out = dprle(&["profile", "top", ledger.to_str().expect("utf8")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hottest queries"), "{stdout}");
    assert!(stdout.contains("Inclusion"), "{stdout}");
    assert!(stdout.contains("Product"), "{stdout}");

    let out = dprle(&["profile", "model", ledger.to_str().expect("utf8")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"lhs_states\""), "{stdout}");

    // One-shot ledgers are untagged; the per-request rollup groups them
    // all under the placeholder bucket.
    let out = dprle(&[
        "profile",
        "top",
        "--by-request",
        ledger.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hottest requests"), "{stdout}");
    assert!(stdout.contains("(untagged)"), "{stdout}");
}

#[test]
fn one_shot_journals_and_ledgers_omit_request_ids() {
    // `request_id` is a serve-plane tag joining journal and ledger rows
    // to a response. One-shot runs must omit the field entirely — not
    // emit `"request_id":null` — so the byte-compare determinism gates
    // (identical output across `--jobs` levels) never see it.
    let file = temp_file("untagged.dprle", MOTIVATING);
    let journal = std::env::temp_dir().join("dprle_cli_test_untagged_trace.jsonl");
    let ledger = std::env::temp_dir().join("dprle_cli_test_untagged_ledger.jsonl");
    let out = dprle(&[
        "--trace-out",
        journal.to_str().expect("utf8"),
        "--ledger-out",
        ledger.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for path in [&journal, &ledger] {
        let jsonl = std::fs::read_to_string(path).expect("output written");
        assert!(jsonl.lines().count() > 0, "{} is empty", path.display());
        assert!(
            !jsonl.contains("request_id"),
            "{} mentions request_id:\n{jsonl}",
            path.display()
        );
    }
}

#[test]
fn profile_diff_names_the_seeded_regression_first_and_gates() {
    let file = temp_file("ledger_diff.dprle", MOTIVATING);
    let old = std::env::temp_dir().join("dprle_cli_test_ledger_old.jsonl");
    let out = dprle(&[
        "--ledger-out",
        old.to_str().expect("utf8"),
        file.to_str().expect("utf8 path"),
    ]);
    assert!(out.status.success());
    // Seed a large constant regression into exactly one record; the diff
    // must rank that query's fingerprint pair first and trip the gate.
    let jsonl = std::fs::read_to_string(&old).expect("ledger written");
    let victim = jsonl.lines().next().expect("nonempty ledger");
    let (prefix, rest) = victim
        .split_once("\"ts_us\":")
        .expect("record carries ts_us");
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    let old_us: u64 = digits.parse().expect("ts_us is numeric");
    let slowed = format!(
        "{prefix}\"ts_us\":{}{}",
        old_us + 100_000,
        &rest[digits.len()..]
    );
    let fp = victim
        .split_once("\"lhs_fp\":\"")
        .expect("record carries fingerprints")
        .1
        .split('"')
        .next()
        .expect("fp digits")
        .to_owned();
    let new_jsonl: String = jsonl
        .lines()
        .map(|l| if l == victim { slowed.as_str() } else { l })
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
    let new = temp_file("ledger_new.jsonl", &new_jsonl);
    let out = dprle(&[
        "profile",
        "diff",
        "--fail-above",
        "50",
        old.to_str().expect("utf8"),
        new.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(1), "gate breached");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first_row = stdout
        .lines()
        .find(|l| l.contains('⊆'))
        .expect("ranked rows");
    assert!(
        first_row.contains(&fp),
        "seeded query ranked first: {first_row}\nfull: {stdout}"
    );
}

#[test]
fn profile_errors_on_empty_or_missing_ledgers() {
    let empty = temp_file("empty_ledger.jsonl", "");
    for view in [
        vec!["profile", "top"],
        vec!["profile", "model"],
        vec!["profile", "check"],
    ] {
        let mut argv = view.clone();
        argv.push(empty.to_str().expect("utf8"));
        let out = dprle(&argv);
        assert_eq!(out.status.code(), Some(2), "{view:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("empty"),
            "{view:?}"
        );
    }
    let out = dprle(&[
        "profile",
        "diff",
        "/nonexistent/a.jsonl",
        "/nonexistent/b.jsonl",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = dprle(&["profile"]);
    assert_eq!(out.status.code(), Some(2));
    let out = dprle(&["profile", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn budgeted_blowup_exits_3_under_every_inclusion_engine() {
    // Mirrors the CI budgeted-blowup step, once per inclusion engine
    // kind: a binding product budget must exit 3 (graceful
    // ResourceExhausted) — never a panic — and still write a metrics
    // snapshot that registers the engine's own work counter.
    let file = temp_file("budgeted_engines.dprle", MOTIVATING);
    for engine in ["antichain", "eager", "derivative", "auto"] {
        let metrics = std::env::temp_dir().join(format!("dprle_cli_test_exhausted_{engine}.jsonl"));
        let out = dprle(&[
            "--max-product-states",
            "2",
            &format!("--inclusion={engine}"),
            "--metrics-out",
            metrics.to_str().expect("utf8 path"),
            file.to_str().expect("utf8 path"),
        ]);
        assert_eq!(
            out.status.code(),
            Some(3),
            "--inclusion={engine} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("resource budget exhausted"),
            "--inclusion={engine}: {stderr}"
        );
        let snapshot = std::fs::read_to_string(&metrics).expect("exhaustion snapshot written");
        assert!(
            snapshot.contains("\"name\":\"automata.inclusion.macrostates\""),
            "--inclusion={engine}: snapshot missing the engine work counter"
        );
    }
}
