//! Multi-tenant guarantees of the shared [`LangStore`] behind
//! `dprle serve`:
//!
//! 1. Concurrent sessions sharing one store produce **byte-identical**
//!    solutions to solo runs — memoization and cross-session reuse
//!    change costs, never answers (PR 1's contract, now under real
//!    thread interleaving).
//! 2. An LRU byte cap (`--store-max-bytes`) only changes hit rates and
//!    eviction counters, never outcomes — even a cap small enough to
//!    evict on every insert.
//! 3. Under a cap, a corpus sweep's **peak** memo footprint (the
//!    `core.store.memo_bytes` gauge's tracked peak, published after
//!    every eviction settles) stays under the cap — the acceptance
//!    criterion for the bounded store.
//! 4. Per-response `stats` are **request-scoped**: a session's counters
//!    cover exactly its own store work, even while another session is
//!    mutating the same store — a request's stats equal those of a solo
//!    twin on a private store (minus wall time).

use dprle_cli::serve::{ServeConfig, SolverService};
use dprle_core::{json_string, lookup, Json, MetricValue, Metrics};
use std::sync::{Arc, Barrier};

/// A deterministic corpus of distinct programs: sat and unsat, single-
/// and multi-variable, regex- and literal-heavy — enough shape variety
/// that the shared store sees interning, intersection, inclusion, and
/// minimization traffic.
fn corpus() -> Vec<String> {
    let mut programs = Vec::new();
    for i in 0..6 {
        programs.push(format!(
            "var v1; c1 := match(/[\\d]+$/); c2 := \"nid{i}_\"; c3 := match(/'/); \
             v1 <= c1; c2 . v1 <= c3;"
        ));
        programs.push(format!(
            "var v; a := \"x{i}\"; b := \"y{i}\"; v <= a; v <= b;"
        ));
        programs.push(format!(
            "var v w; c := /[a-m]*q{i}/; pre := \"ab\"; pre . v . w <= c;"
        ));
    }
    programs
}

fn service(store_max_bytes: Option<u64>, metrics: Metrics) -> Arc<SolverService> {
    Arc::new(SolverService::new(
        ServeConfig {
            store_max_bytes,
            ..ServeConfig::default()
        },
        metrics,
    ))
}

fn request(id: &str, program: &str) -> String {
    format!(
        "{{\"id\":{},\"input\":{},\"witness\":true}}",
        json_string(id),
        json_string(program)
    )
}

/// The deterministic part of a response, structurally: everything except
/// the fields that legitimately vary run to run — `stats` (hit rates and
/// wall time differ between solo and shared-store runs; that is the
/// point of sharing), the service-assigned `request_id`, and the
/// lifecycle `breakdown` timings. Kind, id, assignment count, solutions,
/// and witnesses must be identical.
fn answer(response: &str) -> Json {
    let Json::Obj(fields) = Json::parse(response).expect("response parses as JSON") else {
        panic!("response is not an object: {response}");
    };
    Json::Obj(
        fields
            .into_iter()
            .filter(|(key, _)| !matches!(key.as_str(), "stats" | "request_id" | "breakdown"))
            .collect(),
    )
}

/// A response's `stats` object minus its `wall-us` timing — the
/// deterministic, request-scoped counter set.
fn stats_without_wall(response: &str) -> Vec<(String, Json)> {
    let Json::Obj(fields) = Json::parse(response).expect("response parses as JSON") else {
        panic!("response is not an object: {response}");
    };
    let Some(Json::Obj(stats)) = lookup(&fields, "stats").cloned() else {
        panic!("response carries no stats object: {response}");
    };
    stats
        .into_iter()
        .filter(|(key, _)| key != "wall-us")
        .collect()
}

/// The service-assigned `request_id` echoed in a response.
fn request_id(response: &str) -> String {
    let Json::Obj(fields) = Json::parse(response).expect("response parses as JSON") else {
        panic!("response is not an object: {response}");
    };
    match lookup(&fields, "request_id") {
        Some(Json::Str(id)) => id.clone(),
        other => panic!("response carries no request_id: {other:?}"),
    }
}

#[test]
fn concurrent_sessions_are_byte_identical_to_solo_runs() {
    let programs = corpus();
    // Solo: each program against its own cold private store.
    let solo: Vec<String> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| service(None, Metrics::disabled()).handle_line(&request(&format!("q{i}"), p)))
        .collect();

    // Shared: every program, twice (the second round hits the warm
    // memo), from 6 threads against one service.
    let shared = service(None, Metrics::disabled());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let programs = programs.clone();
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..2 {
                    for (i, p) in programs.iter().enumerate() {
                        // Same thread-count stride the serve queue would
                        // produce: each thread owns a slice, all slices
                        // cover everything across threads.
                        if (i + round) % 3 == t % 3 {
                            out.push((i, shared.handle_line(&request(&format!("q{i}"), p))));
                        }
                    }
                }
                out
            })
        })
        .collect();
    let mut answered = vec![0usize; programs.len()];
    for handle in handles {
        for (i, response) in handle.join().expect("session thread") {
            assert_eq!(
                answer(&response),
                answer(&solo[i]),
                "program {i} diverged under concurrent sharing"
            );
            answered[i] += 1;
        }
    }
    assert!(
        answered.iter().all(|n| *n >= 2),
        "every program was answered at least twice (warm and cold): {answered:?}"
    );
}

#[test]
fn concurrent_sessions_report_disjoint_request_scoped_stats() {
    let programs = corpus();
    // Two programs sharing no literals or regexes: their store keys are
    // disjoint, so neither can warm the other's memo. A request-scoped
    // stats capture must therefore report, for each, exactly the
    // counters of a solo run on a private cold store — under the old
    // global before/after diff, the concurrent neighbor's store traffic
    // bled into both.
    let (a, b) = (&programs[0], &programs[1]);
    let solo_a = service(None, Metrics::disabled()).handle_line(&request("a", a));
    let solo_b = service(None, Metrics::disabled()).handle_line(&request("b", b));

    for round in 0..8 {
        let shared = service(None, Metrics::disabled());
        let barrier = Arc::new(Barrier::new(2));
        let neighbor = {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let b = b.clone();
            std::thread::spawn(move || {
                barrier.wait();
                (0..4)
                    .map(|_| shared.handle_line(&request("b", &b)))
                    .collect::<Vec<_>>()
            })
        };
        barrier.wait();
        let got_a = shared.handle_line(&request("a", a));
        let got_b = neighbor.join().expect("neighbor session");

        assert_eq!(
            answer(&got_a),
            answer(&solo_a),
            "round {round}: answer diverged"
        );
        assert_eq!(
            stats_without_wall(&got_a),
            stats_without_wall(&solo_a),
            "round {round}: session A's counters absorbed its neighbor's store work"
        );
        // The neighbor's first run is also cold (A never touches B's
        // keys), so its counters match B's solo twin too.
        assert_eq!(
            stats_without_wall(&got_b[0]),
            stats_without_wall(&solo_b),
            "round {round}: session B's cold run diverged from its solo twin"
        );
        // One service, five requests: five distinct request ids.
        let mut ids: Vec<String> = got_b.iter().map(|r| request_id(r)).collect();
        ids.push(request_id(&got_a));
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5, "round {round}: request ids collided: {ids:?}");
    }
}

#[test]
fn tiny_cap_eviction_changes_hit_rates_never_outcomes() {
    let programs = corpus();
    let unbounded = service(None, Metrics::disabled());
    // A cap of 1 byte can never retain a memo entry: every insert is
    // immediately evicted, the harshest possible cache pressure.
    let capped = service(Some(1), Metrics::disabled());
    for (i, p) in programs.iter().enumerate() {
        let line = request(&format!("q{i}"), p);
        let free = unbounded.handle_line(&line);
        let tight = capped.handle_line(&line);
        assert_eq!(
            answer(&free),
            answer(&tight),
            "program {i} diverged under eviction"
        );
    }
    let stats = capped.store().stats();
    assert!(stats.evictions > 0, "a 1-byte cap must evict: {stats:?}");
    assert!(
        stats.memo_bytes <= 1,
        "retained bytes over cap: {}",
        stats.memo_bytes
    );
    // The unbounded twin saw the same traffic but kept everything.
    assert_eq!(unbounded.store().stats().evictions, 0);
}

#[test]
fn corpus_sweep_peak_memo_bytes_stays_under_the_cap() {
    let programs = corpus();
    const CAP: u64 = 4 * 1024;

    // Unbounded reference sweep for the answers (and to prove the cap
    // actually binds on this corpus: the free footprint exceeds it).
    let unbounded = service(None, Metrics::disabled());
    let reference: Vec<String> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| unbounded.handle_line(&request(&format!("q{i}"), p)))
        .collect();
    assert!(
        unbounded.store().stats().memo_bytes > CAP,
        "corpus too small to exercise the cap: unbounded footprint {} <= {CAP}",
        unbounded.store().stats().memo_bytes
    );

    // Capped sweep, concurrent, with the metrics registry watching the
    // continuously-published memo-bytes gauge.
    let metrics = Metrics::enabled();
    let capped = service(Some(CAP), metrics.clone());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let capped = Arc::clone(&capped);
            let programs = programs.clone();
            std::thread::spawn(move || {
                programs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 == t)
                    .map(|(i, p)| (i, capped.handle_line(&request(&format!("q{i}"), p))))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        for (i, response) in handle.join().expect("sweep thread") {
            assert_eq!(
                answer(&response),
                answer(&reference[i]),
                "program {i}: capped sweep diverged from unbounded"
            );
        }
    }

    let stats = capped.store().stats();
    assert!(
        stats.memo_bytes <= CAP,
        "retained {} > cap {CAP}",
        stats.memo_bytes
    );
    assert!(stats.evictions > 0, "cap never bound");
    let snapshot = metrics.snapshot().expect("metrics enabled");
    let gauge = snapshot
        .entries
        .iter()
        .find(|e| e.name == "core.store.memo_bytes")
        .expect("memo-bytes gauge present");
    match gauge.value {
        MetricValue::Gauge { value, peak } => {
            assert!(
                peak <= CAP,
                "peak memo bytes {peak} exceeded the cap {CAP} mid-sweep"
            );
            assert!(value <= peak, "gauge value {value} above its peak {peak}");
        }
        ref other => panic!("memo-bytes is not a gauge: {other:?}"),
    }
}
