//! The stand-alone `dprle` constraint solver.
//!
//! ```text
//! dprle [OPTIONS] FILE
//!
//! `FILE` may be in the native constraint format (see `dprle_cli` docs) or
//! an SMT-LIB 2.6 strings script (`.smt2` extension — see
//! `dprle_cli::smtlib` for the supported fragment).
//!
//! Options:
//!   --first          stop at the first satisfying assignment
//!   --all            print every disjunctive assignment (default)
//!   --witness        print one shortest witness string per variable
//!   --dot-graph      print the dependency graph in DOT and exit
//!   --dot-var NAME   print the solved machine for NAME in DOT
//!   --no-verify      skip re-verification of produced assignments
//!   --core           on unsat, print a minimal unsatisfiable core
//!   --trace          print the solver's event trace to stderr
//!   --stats          print solver counters (cache hits, worklist depth)
//!   --no-interning   disable language interning/memoization (ablation)
//!   -h, --help       this message
//! ```

use dprle_cli::parse_file;
use dprle_core::{Solution, SolveOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: dprle [--first] [--witness] [--dot-graph] [--dot-var NAME] [--no-verify] [--stats] [--no-interning] FILE
  solves a system of subset constraints over regular languages
  (see the dprle-cli crate docs for the input format)";

struct Args {
    file: String,
    first: bool,
    witness: bool,
    dot_graph: bool,
    dot_var: Option<String>,
    verify: bool,
    trace: bool,
    core: bool,
    stats: bool,
    interning: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        first: false,
        witness: false,
        dot_graph: false,
        dot_var: None,
        verify: true,
        trace: false,
        core: false,
        stats: false,
        interning: true,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--first" => args.first = true,
            "--all" => args.first = false,
            "--witness" => args.witness = true,
            "--dot-graph" => args.dot_graph = true,
            "--no-verify" => args.verify = false,
            "--trace" => args.trace = true,
            "--core" => args.core = true,
            "--stats" => args.stats = true,
            "--no-interning" => args.interning = false,
            "--dot-var" => {
                i += 1;
                let name = argv.get(i).ok_or("--dot-var needs a name")?;
                args.dot_var = Some(name.clone());
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n{USAGE}"))
            }
            other => {
                if !args.file.is_empty() {
                    return Err(format!("multiple input files\n{USAGE}"));
                }
                args.file = other.to_owned();
            }
        }
        i += 1;
    }
    if args.file.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let input = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dprle: cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    if args.file.ends_with(".smt2") {
        return match dprle_cli::smtlib::run_script(&input) {
            Ok(outputs) => {
                for o in outputs {
                    println!("{o}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dprle: {}: {e}", args.file);
                ExitCode::from(2)
            }
        };
    }
    let parsed = match parse_file(&input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dprle: {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let system = parsed.system;

    if args.dot_graph {
        let graph = dprle_core::DependencyGraph::from_system(&system);
        print!("{}", graph.to_dot(&system));
        return ExitCode::SUCCESS;
    }

    let options = SolveOptions {
        max_assignments: if args.first { Some(1) } else { None },
        verify: args.verify,
        trace: args.trace,
        interning: args.interning,
        ..Default::default()
    };
    let (solution, stats) = dprle_core::solve_with_stats(&system, &options);
    for event in &stats.events {
        eprintln!("trace: {event}");
    }
    if args.stats {
        eprintln!("stats: ci-groups             {}", stats.groups);
        eprintln!("stats: group disjuncts       {}", stats.group_disjuncts);
        eprintln!("stats: branches completed    {}", stats.branches_completed);
        eprintln!("stats: branches filtered     {}", stats.branches_filtered);
        eprintln!("stats: peak worklist depth   {}", stats.peak_worklist);
        eprintln!("stats: max leaf states       {}", stats.max_leaf_states);
        eprintln!("stats: fingerprint hits      {}", stats.fingerprint_hits);
        eprintln!("stats: fingerprint misses    {}", stats.fingerprint_misses);
        eprintln!("stats: memoized-op hits      {}", stats.memo_op_hits);
        eprintln!("stats: memoized-op misses    {}", stats.memo_op_misses);
        eprintln!("stats: states materialized   {}", stats.states_materialized);
    }
    match solution {
        Solution::Unsat => {
            println!("unsat: no satisfying assignments");
            if args.core {
                if let Some(core) = dprle_core::unsat_core(&system, &options) {
                    println!("unsat core ({} constraints):", core.indices.len());
                    for line in core.display(&system).lines() {
                        println!("  {line}");
                    }
                }
            }
            ExitCode::from(1)
        }
        Solution::Assignments(assignments) => {
            println!(
                "sat: {} disjunctive assignment{}",
                assignments.len(),
                if assignments.len() == 1 { "" } else { "s" }
            );
            for (i, a) in assignments.iter().enumerate() {
                println!("--- assignment {}", i + 1);
                for v in system.var_ids() {
                    let Some(machine) = a.get(v) else { continue };
                    if let Some(name) = &args.dot_var {
                        if system.var_name(v) == name {
                            print!("{}", dprle_automata::dot::nfa_to_dot(machine, name));
                            continue;
                        }
                    }
                    if args.witness {
                        match a.witness(v) {
                            Some(w) => println!(
                                "{} = {:?}",
                                system.var_name(v),
                                String::from_utf8_lossy(&w)
                            ),
                            None => println!("{} = (empty language)", system.var_name(v)),
                        }
                    } else {
                        println!(
                            "{} -> {}",
                            system.var_name(v),
                            dprle_regex::display_language(machine, 400)
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}
