//! The stand-alone `dprle` constraint solver.
//!
//! ```text
//! dprle [OPTIONS] FILE
//! dprle serve [SERVE-OPTIONS]
//! dprle watch [--interval-ms N] [--count N] HOST:PORT
//! dprle trace-report [--check-schema SCHEMA] TRACE.jsonl
//! dprle metrics-report [--check-schema] [--top K] METRICS.jsonl
//! dprle profile top|model|diff|check ...
//!
//! `FILE` may be in the native constraint format (see `dprle_cli` docs) or
//! an SMT-LIB 2.6 strings script (`.smt2` extension — see
//! `dprle_cli::smtlib` for the supported fragment).
//!
//! Options:
//!   --first            stop at the first satisfying assignment
//!   --all              print every disjunctive assignment (default)
//!   --witness          print one shortest witness string per variable
//!   --dot-graph        print the dependency graph in DOT and exit
//!   --dot-var NAME     print the solved machine for NAME in DOT
//!   --no-verify        skip re-verification of produced assignments
//!   --core             on unsat, print a minimal unsatisfiable core
//!   --trace            print the solver's event trace to stderr
//!   --trace=summary    print a per-phase time table after solving
//!   --trace-out FILE   write the structured event journal as JSONL
//!   --trace-dot FILE   write the provenance-annotated dependency graph
//!   --stats            print solver counters (cache hits, worklist depth)
//!   --metrics-out FILE write a metrics snapshot after solving
//!   --metrics-format F snapshot format: `json` (default) or `prom`
//!   --ledger-out FILE  write one JSONL record per inclusion/product
//!                      query (the cost ledger; see `dprle profile`)
//!   --max-product-states N  abort once N product states were explored
//!   --max-live-states N     abort once N solution-machine states are live
//!   --deadline-ms N    abort the solve after N milliseconds
//!   --inclusion E      inclusion engine: `antichain` (default, lazy
//!                      subset construction with antichain pruning) or
//!                      `eager` (determinize/complement/product); both
//!                      agree on every answer, costs differ
//!   --no-interning     disable language interning/memoization (ablation)
//!   --jobs N           worklist worker threads (default 1; deterministic)
//!   --store-max-bytes N  LRU byte cap on the language store's memo
//!                      tables (default unbounded); eviction changes hit
//!                      rates, never answers
//!   -h, --help         this message
//!
//! Serve options (`dprle serve` — JSONL request/response service, see
//! `dprle_cli::serve` for the wire schema):
//!   --sessions N       concurrent worker sessions (default 4)
//!   --listen ADDR      serve over TCP at ADDR instead of stdin/stdout
//!                      (prints `listening HOST:PORT` on stdout; use
//!                      `--listen 127.0.0.1:0` for an ephemeral port)
//!   --store-max-bytes N  shared-store LRU byte cap
//!   --jobs/--inclusion/--max-product-states/--max-live-states/
//!   --deadline-ms/--no-interning  per-request defaults (requests may
//!                      override all but interning)
//!   --metrics-out/--metrics-format/--ledger-out  flushed at shutdown
//!   --admin ADDR       HTTP/1.1 admin plane at ADDR: GET /metrics
//!                      (Prometheus), /healthz, /readyz (503 while
//!                      draining), /slow (slowest requests as JSON);
//!                      implies an enabled metrics registry
//!   --trace-out FILE   shared trace journal, every event stamped with
//!                      its request_id
//!   --slow-log FILE    JSONL log of slow requests (docs/slowlog.schema.json)
//!   --slow-ms N        slow-log threshold in milliseconds (default 0:
//!                      log every request)
//!
//! Watch (`dprle watch HOST:PORT`) polls a serve admin plane's /metrics
//! and renders live solves/sec, queue-wait and solve p50/p99, store
//! hit-rate, and eviction deltas:
//!   --interval-ms N    poll interval (default 1000)
//!   --count N          stop after N samples (default: until ^C)
//! ```
//!
//! The `trace-report` subcommand re-reads a `--trace-out` journal offline
//! and prints the same per-phase summary (optionally validating every line
//! against a JSON schema first). The `metrics-report` subcommand re-reads
//! a `--metrics-out` JSON snapshot and prints the top-K most expensive
//! operations (optionally validating it against the bundled
//! `docs/metrics.schema.json` first). The `profile` subcommand inspects
//! `--ledger-out` cost ledgers: `top` ranks the hottest queries, `model`
//! dumps the features→cost table as JSON, `diff` compares two ledgers
//! per-query (with an optional `--fail-above PCT` CI gate), and `check`
//! validates a ledger against `docs/ledger.schema.json`.
//!
//! Exit codes: 0 = sat (or report success), 1 = unsat (or schema
//! violation), 2 = usage/input error, 3 = resource budget exhausted.

mod profile;
mod watch;

use dprle_cli::parse_file;
use dprle_core::{
    parse_snapshot, provenance_dot, render_report, solver_graph, try_solve_traced, validate_jsonl,
    validate_metrics_jsonl, Budget, CollectLedger, CollectSink, EngineKind, JsonlSink, Ledger,
    Metrics, Solution, SolveOptions, SolveStats, System, TeeSink, TraceReport, TraceSink, Tracer,
};
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: dprle [--first] [--witness] [--dot-graph] [--dot-var NAME] [--no-verify] [--trace[=summary]] [--trace-out FILE] [--trace-dot FILE] [--stats] [--metrics-out FILE] [--metrics-format json|prom] [--ledger-out FILE] [--max-product-states N] [--max-live-states N] [--deadline-ms N] [--inclusion eager|antichain|derivative|auto] [--no-interning] [--jobs N] [--store-max-bytes N] FILE
       dprle serve [--sessions N] [--listen ADDR] [--store-max-bytes N] [--jobs N] [--inclusion E] [--max-product-states N] [--max-live-states N] [--deadline-ms N] [--no-interning] [--metrics-out FILE] [--metrics-format json|prom] [--ledger-out FILE] [--admin ADDR] [--trace-out FILE] [--slow-log FILE] [--slow-ms N]
       dprle watch [--interval-ms N] [--count N] HOST:PORT
       dprle trace-report [--check-schema SCHEMA] TRACE.jsonl
       dprle metrics-report [--check-schema] [--top K] METRICS.jsonl
       dprle profile top|model|diff|check ... (see `dprle profile --help`)
  solves a system of subset constraints over regular languages
  (see the dprle-cli crate docs for the input format)";

/// Exit status for a solve aborted by `--max-product-states`,
/// `--max-live-states`, or `--deadline-ms`.
const EXIT_EXHAUSTED: u8 = 3;

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Json,
    Prom,
}

struct Args {
    file: String,
    first: bool,
    witness: bool,
    dot_graph: bool,
    dot_var: Option<String>,
    verify: bool,
    trace: bool,
    trace_summary: bool,
    trace_out: Option<String>,
    trace_dot: Option<String>,
    core: bool,
    stats: bool,
    interning: bool,
    jobs: usize,
    metrics_out: Option<String>,
    metrics_format: MetricsFormat,
    ledger_out: Option<String>,
    max_product_states: Option<u64>,
    max_live_states: Option<u64>,
    deadline_ms: Option<u64>,
    inclusion: EngineKind,
    store_max_bytes: Option<u64>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        first: false,
        witness: false,
        dot_graph: false,
        dot_var: None,
        verify: true,
        trace: false,
        trace_summary: false,
        trace_out: None,
        trace_dot: None,
        core: false,
        stats: false,
        interning: true,
        jobs: 1,
        metrics_out: None,
        metrics_format: MetricsFormat::Json,
        ledger_out: None,
        max_product_states: None,
        max_live_states: None,
        deadline_ms: None,
        inclusion: EngineKind::default(),
        store_max_bytes: None,
    };
    fn engine_arg(name: &str) -> Result<EngineKind, String> {
        EngineKind::parse(name).ok_or_else(|| {
            format!("--inclusion must be eager, antichain, derivative, or auto, got `{name}`")
        })
    }
    fn budget_arg(argv: &[String], i: usize, flag: &str) -> Result<u64, String> {
        let n = argv.get(i).ok_or_else(|| format!("{flag} needs a count"))?;
        n.parse::<u64>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} needs a positive integer, got `{n}`"))
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--first" => args.first = true,
            "--all" => args.first = false,
            "--witness" => args.witness = true,
            "--dot-graph" => args.dot_graph = true,
            "--no-verify" => args.verify = false,
            "--trace" => args.trace = true,
            "--trace=summary" => args.trace_summary = true,
            "--trace-out" => {
                i += 1;
                let path = argv.get(i).ok_or("--trace-out needs a file")?;
                args.trace_out = Some(path.clone());
            }
            "--trace-dot" => {
                i += 1;
                let path = argv.get(i).ok_or("--trace-dot needs a file")?;
                args.trace_dot = Some(path.clone());
            }
            "--core" => args.core = true,
            "--stats" => args.stats = true,
            "--metrics-out" => {
                i += 1;
                let path = argv.get(i).ok_or("--metrics-out needs a file")?;
                args.metrics_out = Some(path.clone());
            }
            "--metrics-format" => {
                i += 1;
                let format = argv.get(i).ok_or("--metrics-format needs json or prom")?;
                args.metrics_format = match format.as_str() {
                    "json" => MetricsFormat::Json,
                    "prom" => MetricsFormat::Prom,
                    other => {
                        return Err(format!(
                            "--metrics-format must be json or prom, got `{other}`"
                        ))
                    }
                };
            }
            "--ledger-out" => {
                i += 1;
                let path = argv.get(i).ok_or("--ledger-out needs a file")?;
                args.ledger_out = Some(path.clone());
            }
            "--max-product-states" => {
                i += 1;
                args.max_product_states = Some(budget_arg(argv, i, "--max-product-states")?);
            }
            "--max-live-states" => {
                i += 1;
                args.max_live_states = Some(budget_arg(argv, i, "--max-live-states")?);
            }
            "--deadline-ms" => {
                i += 1;
                args.deadline_ms = Some(budget_arg(argv, i, "--deadline-ms")?);
            }
            "--store-max-bytes" => {
                i += 1;
                // Unlike the budget flags a cap of 0 is meaningful (evict
                // everything immediately — the harshest ablation).
                let n = argv.get(i).ok_or("--store-max-bytes needs a byte count")?;
                args.store_max_bytes = Some(n.parse::<u64>().map_err(|_| {
                    format!("--store-max-bytes needs a nonnegative integer, got `{n}`")
                })?);
            }
            "--inclusion" => {
                i += 1;
                let name = argv.get(i).ok_or("--inclusion needs an engine name")?;
                args.inclusion = engine_arg(name)?;
            }
            value if value.starts_with("--inclusion=") => {
                args.inclusion = engine_arg(&value["--inclusion=".len()..])?;
            }
            "--no-interning" => args.interning = false,
            "--jobs" => {
                i += 1;
                let n = argv.get(i).ok_or("--jobs needs a count")?;
                args.jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{n}`"))?;
            }
            "--dot-var" => {
                i += 1;
                let name = argv.get(i).ok_or("--dot-var needs a name")?;
                args.dot_var = Some(name.clone());
            }
            "-h" | "--help" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n{USAGE}"))
            }
            other => {
                if !args.file.is_empty() {
                    return Err(format!("multiple input files\n{USAGE}"));
                }
                args.file = other.to_owned();
            }
        }
        i += 1;
    }
    if args.file.is_empty() {
        return Err(USAGE.to_owned());
    }
    Ok(args)
}

/// The tracer plus handles to its sinks: the collector backs `--trace=summary`
/// and `--trace-dot` (both need the events after the solve), the JSONL sink
/// backs `--trace-out` and is kept typed so deferred write errors surface at
/// the final flush.
struct TraceSetup {
    tracer: Tracer,
    collect: Option<Arc<CollectSink>>,
    jsonl: Option<Arc<JsonlSink<BufWriter<File>>>>,
}

impl TraceSetup {
    fn from_args(args: &Args) -> Result<TraceSetup, String> {
        let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
        let collect = if args.trace_summary || args.trace_dot.is_some() {
            let sink = Arc::new(CollectSink::new());
            sinks.push(sink.clone());
            Some(sink)
        } else {
            None
        };
        let jsonl = match &args.trace_out {
            Some(path) => {
                let file =
                    File::create(path).map_err(|e| format!("dprle: cannot write {path}: {e}"))?;
                let sink = Arc::new(JsonlSink::new(BufWriter::new(file)));
                sinks.push(sink.clone());
                Some(sink)
            }
            None => None,
        };
        let tracer = match sinks.len() {
            0 => Tracer::disabled(),
            1 => Tracer::new(sinks.pop().expect("one sink")),
            _ => Tracer::new(Arc::new(TeeSink(sinks))),
        };
        Ok(TraceSetup {
            tracer,
            collect,
            jsonl,
        })
    }

    /// Flushes the journal and renders the summary / provenance outputs.
    /// Returns an error message if any file write failed.
    fn finish(&self, args: &Args, system: &System) -> Result<(), String> {
        if let Some(jsonl) = &self.jsonl {
            jsonl
                .flush()
                .map_err(|e| format!("dprle: writing trace journal: {e}"))?;
        }
        let Some(collect) = &self.collect else {
            return Ok(());
        };
        let events = collect.snapshot();
        if args.trace_summary {
            match TraceReport::from_events(&events) {
                Ok(report) => eprint!("{}", report.render()),
                Err(e) => return Err(format!("dprle: trace summary: {e}")),
            }
        }
        if let Some(path) = &args.trace_dot {
            let dot = provenance_dot(&solver_graph(system), system, &events);
            std::fs::write(path, dot).map_err(|e| format!("dprle: cannot write {path}: {e}"))?;
        }
        Ok(())
    }
}

fn print_stats(stats: &SolveStats) {
    for line in stats.to_string().lines() {
        eprintln!("stats: {line}");
    }
}

/// Writes the registry snapshot to `--metrics-out` in the selected
/// format. A no-op when the flag is absent (the registry is then the
/// disabled handle and has no snapshot to give).
fn write_metrics(args: &Args, metrics: &Metrics) -> Result<(), String> {
    let Some(path) = &args.metrics_out else {
        return Ok(());
    };
    let Some(snapshot) = metrics.snapshot() else {
        return Ok(());
    };
    let text = match args.metrics_format {
        MetricsFormat::Json => {
            let ts_us = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            snapshot.to_jsonl(ts_us)
        }
        MetricsFormat::Prom => snapshot.to_prometheus(),
    };
    std::fs::write(path, text).map_err(|e| format!("dprle: cannot write {path}: {e}"))
}

/// Writes the collected cost ledger to `--ledger-out` as JSONL. A no-op
/// when the flag is absent (no sink was installed, so the ledger handle in
/// `SolveOptions` was the disabled one and no records exist).
fn write_ledger(args: &Args, sink: &Option<Arc<CollectLedger>>) -> Result<(), String> {
    let (Some(path), Some(sink)) = (&args.ledger_out, sink) else {
        return Ok(());
    };
    std::fs::write(path, sink.to_jsonl()).map_err(|e| format!("dprle: cannot write {path}: {e}"))
}

fn trace_report_main(argv: &[String]) -> ExitCode {
    let mut schema_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check-schema" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => schema_path = Some(p.clone()),
                    None => {
                        eprintln!("--check-schema needs a file\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => {
                if trace_path.is_some() {
                    eprintln!("multiple trace files\n{USAGE}");
                    return ExitCode::from(2);
                }
                trace_path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let jsonl = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dprle: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    // An empty journal means the producing run was interrupted before its
    // first event (or the wrong file was passed); a "0 events" report would
    // silently bless that, so it is an input error instead.
    if jsonl.trim().is_empty() {
        eprintln!("dprle: {trace_path}: line 1: trace journal is empty (no events)");
        return ExitCode::from(2);
    }
    if let Some(schema_path) = schema_path {
        let schema = match std::fs::read_to_string(&schema_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dprle: cannot read {schema_path}: {e}");
                return ExitCode::from(2);
            }
        };
        match validate_jsonl(&schema, &jsonl) {
            Ok(n) => println!("schema: {n} events valid"),
            Err(e) => {
                eprintln!("dprle: schema violation: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let events = match dprle_core::parse_jsonl(&jsonl) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("dprle: {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match TraceReport::from_events(&events) {
        Ok(report) => {
            print!("{}", report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dprle: {trace_path}: {e}");
            ExitCode::from(2)
        }
    }
}

fn metrics_report_main(argv: &[String]) -> ExitCode {
    let mut check_schema = false;
    let mut top = 10usize;
    let mut metrics_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--check-schema" => check_schema = true,
            "--top" => {
                i += 1;
                let Some(k) = argv.get(i).and_then(|k| k.parse::<usize>().ok()) else {
                    eprintln!("--top needs a count\n{USAGE}");
                    return ExitCode::from(2);
                };
                top = k;
            }
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            other => {
                if metrics_path.is_some() {
                    eprintln!("multiple metrics files\n{USAGE}");
                    return ExitCode::from(2);
                }
                metrics_path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let Some(metrics_path) = metrics_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let jsonl = match std::fs::read_to_string(&metrics_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dprle: cannot read {metrics_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if jsonl.trim().is_empty() {
        eprintln!("dprle: {metrics_path}: line 1: metrics snapshot is empty (no entries)");
        return ExitCode::from(2);
    }
    if check_schema {
        match validate_metrics_jsonl(&jsonl) {
            Ok(n) => println!("schema: {n} lines valid"),
            Err(e) => {
                eprintln!("dprle: schema violation: {e}");
                return ExitCode::from(1);
            }
        }
    }
    match parse_snapshot(&jsonl) {
        Ok(snapshot) => {
            print!("{}", render_report(&snapshot, top));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dprle: {metrics_path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// `dprle serve`: boots the multi-session solver service over
/// stdin/stdout (default) or a TCP socket (`--listen`), then flushes the
/// metrics snapshot and cost ledger after a graceful shutdown
/// (stdin EOF or SIGTERM/SIGINT).
fn serve_main(argv: &[String]) -> ExitCode {
    use dprle_cli::serve::{
        install_sigterm_flag, serve_admin, serve_stdio, serve_tcp, ServeConfig, SolverService,
    };

    let mut config = ServeConfig::default();
    let mut listen: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut metrics_format = MetricsFormat::Json;
    let mut ledger_out: Option<String> = None;
    let mut admin: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut slow_log: Option<String> = None;
    let mut slow_ms: u64 = 0;
    fn count_arg(argv: &[String], i: usize, flag: &str) -> Result<u64, String> {
        let n = argv.get(i).ok_or_else(|| format!("{flag} needs a count"))?;
        n.parse::<u64>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} needs a positive integer, got `{n}`"))
    }
    let mut i = 0;
    let parsed: Result<(), String> = loop {
        if i >= argv.len() {
            break Ok(());
        }
        match argv[i].as_str() {
            "--sessions" => match count_arg(argv, i + 1, "--sessions") {
                Ok(n) => {
                    config.sessions = n as usize;
                    i += 1;
                }
                Err(e) => break Err(e),
            },
            "--listen" => {
                i += 1;
                match argv.get(i) {
                    Some(addr) => listen = Some(addr.clone()),
                    None => break Err("--listen needs an address".to_owned()),
                }
            }
            "--store-max-bytes" => {
                i += 1;
                let Some(n) = argv.get(i) else {
                    break Err("--store-max-bytes needs a byte count".to_owned());
                };
                match n.parse::<u64>() {
                    Ok(n) => config.store_max_bytes = Some(n),
                    Err(_) => {
                        break Err(format!(
                            "--store-max-bytes needs a nonnegative integer, got `{n}`"
                        ))
                    }
                }
            }
            "--jobs" => match count_arg(argv, i + 1, "--jobs") {
                Ok(n) => {
                    config.jobs = n as usize;
                    i += 1;
                }
                Err(e) => break Err(e),
            },
            "--inclusion" => {
                i += 1;
                match argv.get(i).and_then(|n| EngineKind::parse(n)) {
                    Some(engine) => config.inclusion = engine,
                    None => {
                        break Err(
                            "--inclusion must be eager, antichain, derivative, or auto".to_owned()
                        )
                    }
                }
            }
            "--max-product-states" => match count_arg(argv, i + 1, "--max-product-states") {
                Ok(n) => {
                    config.max_product_states = Some(n);
                    i += 1;
                }
                Err(e) => break Err(e),
            },
            "--max-live-states" => match count_arg(argv, i + 1, "--max-live-states") {
                Ok(n) => {
                    config.max_live_states = Some(n);
                    i += 1;
                }
                Err(e) => break Err(e),
            },
            "--deadline-ms" => match count_arg(argv, i + 1, "--deadline-ms") {
                Ok(n) => {
                    config.deadline_ms = Some(n);
                    i += 1;
                }
                Err(e) => break Err(e),
            },
            "--no-interning" => config.interning = false,
            "--metrics-out" => {
                i += 1;
                match argv.get(i) {
                    Some(path) => metrics_out = Some(path.clone()),
                    None => break Err("--metrics-out needs a file".to_owned()),
                }
            }
            "--metrics-format" => {
                i += 1;
                match argv.get(i).map(String::as_str) {
                    Some("json") => metrics_format = MetricsFormat::Json,
                    Some("prom") => metrics_format = MetricsFormat::Prom,
                    _ => break Err("--metrics-format must be json or prom".to_owned()),
                }
            }
            "--ledger-out" => {
                i += 1;
                match argv.get(i) {
                    Some(path) => ledger_out = Some(path.clone()),
                    None => break Err("--ledger-out needs a file".to_owned()),
                }
            }
            "--admin" => {
                i += 1;
                match argv.get(i) {
                    Some(addr) => admin = Some(addr.clone()),
                    None => break Err("--admin needs an address".to_owned()),
                }
            }
            "--trace-out" => {
                i += 1;
                match argv.get(i) {
                    Some(path) => trace_out = Some(path.clone()),
                    None => break Err("--trace-out needs a file".to_owned()),
                }
            }
            "--slow-log" => {
                i += 1;
                match argv.get(i) {
                    Some(path) => slow_log = Some(path.clone()),
                    None => break Err("--slow-log needs a file".to_owned()),
                }
            }
            "--slow-ms" => {
                i += 1;
                // Unlike the budget flags a threshold of 0 is meaningful
                // (log every request).
                let Some(n) = argv.get(i) else {
                    break Err("--slow-ms needs a millisecond count".to_owned());
                };
                match n.parse::<u64>() {
                    Ok(n) => slow_ms = n,
                    Err(_) => {
                        break Err(format!("--slow-ms needs a nonnegative integer, got `{n}`"))
                    }
                }
            }
            "-h" | "--help" => break Err(USAGE.to_owned()),
            other => break Err(format!("unknown serve option `{other}`\n{USAGE}")),
        }
        i += 1;
    };
    if let Err(msg) = parsed {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    config.collect_ledger = ledger_out.is_some();
    // The admin plane's /metrics is useless against a disabled registry,
    // so --admin implies an enabled one even without --metrics-out.
    let metrics = if metrics_out.is_some() || admin.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let service = Arc::new(SolverService::new(config, metrics.clone()));
    if let Some(path) = &slow_log {
        match File::create(path) {
            Ok(file) => service.set_slow_log(Box::new(BufWriter::new(file)), slow_ms),
            Err(e) => {
                eprintln!("dprle: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // The shared journal; every request's events are stamped with its
    // request_id, so the interleaved file stays joinable.
    let trace_sink = match &trace_out {
        Some(path) => match File::create(path) {
            Ok(file) => {
                let sink = Arc::new(JsonlSink::new(BufWriter::new(file)));
                service.set_trace_sink(sink.clone());
                Some(sink)
            }
            Err(e) => {
                eprintln!("dprle: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let shutdown = install_sigterm_flag();
    // The admin plane outlives the serve loop (so /readyz can report the
    // drain) and is stopped explicitly once the loop returns.
    let admin_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let admin_thread = match &admin {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dprle: cannot bind admin listener on {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Stderr, not stdout: in stdio mode stdout is the response
            // channel.
            match listener.local_addr() {
                Ok(bound) => eprintln!("dprle: serve: admin listening {bound}"),
                Err(_) => eprintln!("dprle: serve: admin listening {addr}"),
            }
            let service = Arc::clone(&service);
            let stop = Arc::clone(&admin_stop);
            Some(std::thread::spawn(move || {
                serve_admin(&service, listener, shutdown, &stop)
            }))
        }
        None => None,
    };
    match &listen {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("dprle: cannot listen on {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            // The bound address goes to stdout (the response channel is
            // the socket, so stdout is free) — callers binding port 0
            // read the real port from here.
            match listener.local_addr() {
                Ok(bound) => println!("listening {bound}"),
                Err(_) => println!("listening {addr}"),
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            if let Err(e) = serve_tcp(&service, listener, shutdown) {
                eprintln!("dprle: serve: {e}");
                return ExitCode::from(2);
            }
        }
        None => serve_stdio(&service, shutdown),
    }
    // Drain complete: stop the admin plane, then flush the artifacts.
    admin_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(thread) = admin_thread {
        if let Err(e) = thread.join().unwrap_or(Ok(())) {
            eprintln!("dprle: serve: admin: {e}");
        }
    }
    if let Some(sink) = &trace_sink {
        if let Err(e) = sink.flush() {
            eprintln!("dprle: writing trace journal: {e}");
            return ExitCode::from(2);
        }
    }
    // Flush the shutdown artifacts. Reuse the one-shot writers via a
    // minimal Args so the formats stay identical.
    if let Some(path) = &metrics_out {
        let flush = Args {
            metrics_out: Some(path.clone()),
            metrics_format,
            ..empty_args()
        };
        if let Err(msg) = write_metrics(&flush, &metrics) {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &ledger_out {
        if let Err(e) = std::fs::write(path, service.ledger_jsonl()) {
            eprintln!("dprle: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "dprle: serve: handled {} request(s), shutting down",
        service.requests_handled()
    );
    ExitCode::SUCCESS
}

/// A default `Args` for code paths (serve shutdown flush) that reuse the
/// one-shot helpers without a real command line.
fn empty_args() -> Args {
    Args {
        file: String::new(),
        first: false,
        witness: false,
        dot_graph: false,
        dot_var: None,
        verify: true,
        trace: false,
        trace_summary: false,
        trace_out: None,
        trace_dot: None,
        core: false,
        stats: false,
        interning: true,
        jobs: 1,
        metrics_out: None,
        metrics_format: MetricsFormat::Json,
        ledger_out: None,
        max_product_states: None,
        max_live_states: None,
        deadline_ms: None,
        inclusion: EngineKind::default(),
        store_max_bytes: None,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace-report") {
        return trace_report_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("metrics-report") {
        return metrics_report_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("profile") {
        return profile::profile_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("watch") {
        return watch::watch_main(&argv[1..], USAGE);
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let input = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dprle: cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let setup = match TraceSetup::from_args(&args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let metrics = if args.metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    // The ledger collects in memory and is written once at exit so the
    // file is complete JSONL even on the exhausted paths.
    let ledger_sink = args
        .ledger_out
        .as_ref()
        .map(|_| Arc::new(CollectLedger::new()));
    let ledger = ledger_sink
        .as_ref()
        .map_or_else(Ledger::disabled, |sink| Ledger::new(sink.clone()));
    let options = SolveOptions {
        max_assignments: if args.first { Some(1) } else { None },
        verify: args.verify,
        trace: args.trace,
        interning: args.interning,
        jobs: args.jobs,
        metrics: metrics.clone(),
        budget: Budget {
            max_product_states: args.max_product_states,
            max_live_states: args.max_live_states,
            deadline: args.deadline_ms.map(Duration::from_millis),
        },
        inclusion_engine: args.inclusion,
        ledger,
        ..Default::default()
    };
    // Both input formats solve against this store; the optional LRU byte
    // cap applies to either.
    let store = dprle_automata::LangStore::interning(options.interning);
    store.set_max_bytes(args.store_max_bytes);
    if args.file.ends_with(".smt2") {
        let store = Arc::new(store);
        let run = match dprle_cli::smtlib::run_script_shared(&input, &options, &setup.tracer, store)
        {
            Ok(run) => run,
            Err(e) => {
                eprintln!("dprle: {}: {e}", args.file);
                // A budget breach is a solver outcome, not a script error:
                // the partial metrics still get written, and the exit code
                // tells the two apart.
                if e.exhausted.is_some() {
                    if let Err(msg) = write_metrics(&args, &metrics) {
                        eprintln!("{msg}");
                    }
                    if let Err(msg) = write_ledger(&args, &ledger_sink) {
                        eprintln!("{msg}");
                    }
                    return ExitCode::from(EXIT_EXHAUSTED);
                }
                return ExitCode::from(2);
            }
        };
        for event in &run.stats.events {
            eprintln!("trace: {event}");
        }
        if args.stats {
            print_stats(&run.stats);
        }
        if let Err(msg) = write_metrics(&args, &metrics) {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
        if let Err(msg) = write_ledger(&args, &ledger_sink) {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
        if let Err(msg) = setup.finish(&args, &run.system) {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
        for o in run.outputs {
            println!("{o}");
        }
        return ExitCode::SUCCESS;
    }
    let parsed = match parse_file(&input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dprle: {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let system = parsed.system;

    if args.dot_graph {
        let graph = dprle_core::DependencyGraph::from_system(&system);
        print!("{}", graph.to_dot(&system));
        return ExitCode::SUCCESS;
    }

    let (solution, stats) = match try_solve_traced(&system, &options, &store, &setup.tracer) {
        Ok(run) => run,
        Err(exhausted) => {
            for event in &exhausted.stats.events {
                eprintln!("trace: {event}");
            }
            if args.stats {
                print_stats(&exhausted.stats);
            }
            if let Err(msg) = write_metrics(&args, &metrics) {
                eprintln!("{msg}");
            }
            if let Err(msg) = write_ledger(&args, &ledger_sink) {
                eprintln!("{msg}");
            }
            if let Err(msg) = setup.finish(&args, &system) {
                eprintln!("{msg}");
            }
            eprintln!("dprle: {exhausted}");
            return ExitCode::from(EXIT_EXHAUSTED);
        }
    };
    for event in &stats.events {
        eprintln!("trace: {event}");
    }
    // Stats are printed on every exit path — sat, unsat, and early-unsat —
    // before the solution is inspected, so `--stats` never goes silent.
    if args.stats {
        print_stats(&stats);
    }
    if let Err(msg) = write_metrics(&args, &metrics) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    if let Err(msg) = write_ledger(&args, &ledger_sink) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    if let Err(msg) = setup.finish(&args, &system) {
        eprintln!("{msg}");
        return ExitCode::from(2);
    }
    match solution {
        Solution::Unsat => {
            println!("unsat: no satisfying assignments");
            if args.core {
                // The core search re-solves constraint subsets; a budget
                // tuned for the full system would spuriously abort those
                // probes, so it runs unlimited.
                let mut core_options = options.clone();
                core_options.budget = Budget::default();
                if let Some(core) = dprle_core::unsat_core(&system, &core_options) {
                    println!("unsat core ({} constraints):", core.indices.len());
                    for line in core.display(&system).lines() {
                        println!("  {line}");
                    }
                }
            }
            ExitCode::from(1)
        }
        Solution::Assignments(assignments) => {
            println!(
                "sat: {} disjunctive assignment{}",
                assignments.len(),
                if assignments.len() == 1 { "" } else { "s" }
            );
            for (i, a) in assignments.iter().enumerate() {
                println!("--- assignment {}", i + 1);
                for v in system.var_ids() {
                    let Some(machine) = a.get(v) else { continue };
                    if let Some(name) = &args.dot_var {
                        if system.var_name(v) == name {
                            print!("{}", dprle_automata::dot::nfa_to_dot(machine, name));
                            continue;
                        }
                    }
                    if args.witness {
                        match a.witness(v) {
                            Some(w) => println!(
                                "{} = {:?}",
                                system.var_name(v),
                                String::from_utf8_lossy(&w)
                            ),
                            None => println!("{} = (empty language)", system.var_name(v)),
                        }
                    } else {
                        println!(
                            "{} -> {}",
                            system.var_name(v),
                            dprle_regex::display_language(machine, 400)
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}
