//! Text constraint format for the stand-alone `dprle` utility.
//!
//! The paper shipped its decision procedure "as a stand-alone utility in
//! the style of a theorem prover or SAT solver" (§4); this module defines
//! the input language of ours. A file is a sequence of `;`-terminated
//! statements:
//!
//! ```text
//! # The paper's motivating system.
//! var v1;
//! c1 := match(/[\d]+$/);       # regex constant, preg_match semantics
//! c2 := "nid_";                # string-literal constant
//! c3 := match(/'/);            # unsafe queries: contain a quote
//! v1 <= c1;
//! c2 . v1 <= c3;
//! ```
//!
//! * `var n1 n2 …;` declares variables.
//! * `name := "bytes";` declares a literal constant (supports `\n`, `\t`,
//!   `\"`, `\\`, `\xHH` escapes).
//! * `name := /re/;` declares a regex constant with *exact* (full-match)
//!   semantics; `name := match(/re/);` uses search (`preg_match`)
//!   semantics.
//! * `expr <= name;` adds a subset constraint; `expr` is built from
//!   declared names with `.` (concatenation), `|` (union), and
//!   parentheses.

use dprle_core::{Expr, System};
use std::fmt;

pub mod serve;
pub mod smtlib;

/// A parse error with line information.
#[derive(Clone, Debug)]
pub struct ParseFileError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseFileError {}

/// The result of parsing a constraint file.
#[derive(Debug)]
pub struct ParsedFile {
    /// The constraint system, ready to solve.
    pub system: System,
}

/// Parses the text constraint format into a [`System`].
///
/// # Errors
///
/// Returns a [`ParseFileError`] pointing at the offending line for syntax
/// errors, undeclared names, malformed regexes, or duplicate definitions.
pub fn parse_file(input: &str) -> Result<ParsedFile, ParseFileError> {
    let mut parser = FileParser {
        system: System::new(),
        declared_vars: Vec::new(),
    };
    // Statements end with ';'. Track line numbers by counting newlines.
    let mut line = 1usize;
    let mut statement = String::new();
    let mut statement_line = 1usize;
    for ch in input.chars() {
        if ch == '\n' {
            line += 1;
        }
        if ch == ';' {
            parser.statement(statement.trim(), statement_line)?;
            statement.clear();
            statement_line = line;
        } else {
            if statement.trim().is_empty() {
                statement_line = line;
            }
            statement.push(ch);
        }
    }
    let tail = strip_comments(&statement);
    if !tail.trim().is_empty() {
        return Err(ParseFileError {
            line: statement_line,
            message: "trailing statement without ';'".to_owned(),
        });
    }
    Ok(ParsedFile {
        system: parser.system,
    })
}

fn strip_comments(s: &str) -> String {
    s.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

struct FileParser {
    system: System,
    declared_vars: Vec<String>,
}

impl FileParser {
    fn err(&self, line: usize, message: impl Into<String>) -> ParseFileError {
        ParseFileError {
            line,
            message: message.into(),
        }
    }

    fn statement(&mut self, raw: &str, line: usize) -> Result<(), ParseFileError> {
        let text = strip_comments(raw);
        let text = text.trim();
        if text.is_empty() {
            return Ok(());
        }
        if let Some(rest) = text.strip_prefix("var ") {
            for name in rest.split_whitespace() {
                self.check_name(name, line)?;
                self.declared_vars.push(name.to_owned());
                self.system.var(name);
            }
            return Ok(());
        }
        if let Some(idx) = text.find(":=") {
            let name = text[..idx].trim();
            self.check_name(name, line)?;
            if self.declared_vars.iter().any(|v| v == name) {
                return Err(self.err(line, format!("`{name}` is already a variable")));
            }
            let value = text[idx + 2..].trim();
            let machine = self.constant_value(value, line)?;
            self.system.constant(name, machine);
            return Ok(());
        }
        if let Some(idx) = text.find("<=") {
            let lhs = self.expr(text[..idx].trim(), line)?;
            let rhs_name = text[idx + 2..].trim();
            let rhs = self
                .const_id(rhs_name)
                .ok_or_else(|| self.err(line, format!("unknown constant `{rhs_name}`")))?;
            self.system.require(lhs, rhs);
            return Ok(());
        }
        Err(self.err(line, format!("unrecognized statement: `{text}`")))
    }

    fn check_name(&self, name: &str, line: usize) -> Result<(), ParseFileError> {
        let ok = !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !name.chars().next().expect("nonempty").is_ascii_digit();
        if ok {
            Ok(())
        } else {
            Err(self.err(line, format!("invalid name `{name}`")))
        }
    }

    fn constant_value(
        &self,
        value: &str,
        line: usize,
    ) -> Result<dprle_automata::Nfa, ParseFileError> {
        if let Some(inner) = value
            .strip_prefix("match(")
            .and_then(|v| v.strip_suffix(')'))
        {
            let pattern = self.regex_body(inner.trim(), line)?;
            let re = dprle_regex::Regex::new(&pattern)
                .map_err(|e| self.err(line, format!("bad regex: {e}")))?;
            return Ok(re.search_language().clone());
        }
        if value.starts_with('/') {
            let pattern = self.regex_body(value, line)?;
            let re = dprle_regex::Regex::new(&pattern)
                .map_err(|e| self.err(line, format!("bad regex: {e}")))?;
            return Ok(re.exact_language().clone());
        }
        if value.starts_with('"') {
            let bytes = self.literal_body(value, line)?;
            return Ok(dprle_automata::Nfa::literal(&bytes));
        }
        Err(self.err(
            line,
            format!("expected \"literal\", /regex/, or match(/regex/), got `{value}`"),
        ))
    }

    fn regex_body(&self, value: &str, line: usize) -> Result<String, ParseFileError> {
        let inner = value
            .strip_prefix('/')
            .and_then(|v| v.strip_suffix('/'))
            .ok_or_else(|| self.err(line, "regex must be delimited by /…/"))?;
        Ok(inner.to_owned())
    }

    fn literal_body(&self, value: &str, line: usize) -> Result<Vec<u8>, ParseFileError> {
        let inner = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| self.err(line, "literal must be delimited by \"…\""))?;
        let mut out = Vec::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                continue;
            }
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('r') => out.push(b'\r'),
                Some('"') => out.push(b'"'),
                Some('\\') => out.push(b'\\'),
                Some('x') => {
                    let hi = chars.next().and_then(|c| c.to_digit(16));
                    let lo = chars.next().and_then(|c| c.to_digit(16));
                    match (hi, lo) {
                        (Some(hi), Some(lo)) => out.push((hi * 16 + lo) as u8),
                        _ => return Err(self.err(line, "malformed \\xHH escape")),
                    }
                }
                other => {
                    return Err(self.err(
                        line,
                        format!(
                            "unknown escape `\\{}`",
                            other.map(String::from).unwrap_or_default()
                        ),
                    ))
                }
            }
        }
        Ok(out)
    }

    fn const_id(&self, name: &str) -> Option<dprle_core::ConstId> {
        (0..self.system.num_consts() as u32)
            .map(dprle_core::ConstId)
            .find(|c| self.system.const_name(*c) == name)
    }

    /// Parses `a . b | c . (d . e)` over declared names.
    fn expr(&mut self, text: &str, line: usize) -> Result<Expr, ParseFileError> {
        let tokens = tokenize(text).map_err(|m| self.err(line, m))?;
        let mut pos = 0usize;
        let e = self.parse_union(&tokens, &mut pos, line)?;
        if pos != tokens.len() {
            return Err(self.err(line, format!("unexpected `{}`", tokens[pos])));
        }
        Ok(e)
    }

    fn parse_union(
        &mut self,
        tokens: &[String],
        pos: &mut usize,
        line: usize,
    ) -> Result<Expr, ParseFileError> {
        let mut e = self.parse_concat(tokens, pos, line)?;
        while tokens.get(*pos).is_some_and(|t| t == "|") {
            *pos += 1;
            let rhs = self.parse_concat(tokens, pos, line)?;
            e = e.union(rhs);
        }
        Ok(e)
    }

    fn parse_concat(
        &mut self,
        tokens: &[String],
        pos: &mut usize,
        line: usize,
    ) -> Result<Expr, ParseFileError> {
        let mut e = self.parse_atom(tokens, pos, line)?;
        while tokens.get(*pos).is_some_and(|t| t == ".") {
            *pos += 1;
            let rhs = self.parse_atom(tokens, pos, line)?;
            e = e.concat(rhs);
        }
        Ok(e)
    }

    fn parse_atom(
        &mut self,
        tokens: &[String],
        pos: &mut usize,
        line: usize,
    ) -> Result<Expr, ParseFileError> {
        let token = tokens
            .get(*pos)
            .ok_or_else(|| self.err(line, "unexpected end of expression"))?
            .clone();
        *pos += 1;
        if token == "(" {
            let e = self.parse_union(tokens, pos, line)?;
            if tokens.get(*pos).is_none_or(|t| t != ")") {
                return Err(self.err(line, "expected `)`"));
            }
            *pos += 1;
            return Ok(e);
        }
        if self.declared_vars.contains(&token) {
            let v = self.system.var(&token);
            return Ok(Expr::Var(v));
        }
        if let Some(c) = self.const_id(&token) {
            return Ok(Expr::Const(c));
        }
        Err(self.err(line, format!("unknown name `{token}`")))
    }
}

fn tokenize(text: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '.' | '|' | '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => cur.push(c),
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_core::{solve, SolveOptions};

    const MOTIVATING: &str = r#"
        # The paper's motivating system.
        var v1;
        c1 := match(/[\d]+$/);
        c2 := "nid_";
        c3 := match(/'/);
        v1 <= c1;
        c2 . v1 <= c3;
    "#;

    #[test]
    fn parses_and_solves_the_motivating_file() {
        let parsed = parse_file(MOTIVATING).expect("parses");
        assert_eq!(parsed.system.num_constraints(), 2);
        let solution = solve(&parsed.system, &SolveOptions::default());
        let v1 = parsed.system.var_id("v1").expect("declared");
        let w = solution
            .first()
            .expect("sat")
            .witness(v1)
            .expect("nonempty");
        assert!(w.contains(&b'\''));
    }

    #[test]
    fn literal_escapes() {
        let parsed = parse_file(r#"x := "a\n\t\"\\\x41";"#).expect("parses");
        let c = dprle_core::ConstId(0);
        assert!(parsed.system.const_machine(c).contains(b"a\n\t\"\\A"));
    }

    #[test]
    fn exact_vs_search_regex() {
        let parsed = parse_file("a := /ab/; b := match(/ab/);").expect("parses");
        let exact = parsed.system.const_machine(dprle_core::ConstId(0));
        let search = parsed.system.const_machine(dprle_core::ConstId(1));
        assert!(exact.contains(b"ab") && !exact.contains(b"xaby"));
        assert!(search.contains(b"xaby"));
    }

    #[test]
    fn union_and_parens_in_expressions() {
        let parsed = parse_file("var v w; c := /x*/; (v | w) . v <= c; v <= c;").expect("parses");
        assert_eq!(parsed.system.num_constraints(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_file("var v;\nnope nope;").expect_err("bad statement");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(parse_file("var v; v <= missing;").is_err());
        assert!(parse_file("q <= q;").is_err());
        assert!(parse_file("var v; c := /a/; v . zz <= c;").is_err());
    }

    #[test]
    fn name_clashes_are_rejected() {
        assert!(parse_file("var v; v := \"x\";").is_err());
        assert!(parse_file("var 9bad;").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_file("var v; c := /a/; v <= c").is_err());
        assert!(parse_file("x := oops;").is_err());
        assert!(parse_file("x := /bad(/;").is_err());
    }

    #[test]
    fn comments_and_blank_statements_are_ignored() {
        let parsed = parse_file("# header\n;;\nvar v; # trailing\n").expect("parses");
        assert_eq!(parsed.system.num_vars(), 1);
    }
}
