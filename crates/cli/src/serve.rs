//! The `dprle serve` front end: many concurrent solver sessions in one
//! process, sharing a single (optionally byte-capped) [`LangStore`].
//!
//! Requests and responses are JSONL — one JSON object per line — carried
//! either over stdin/stdout (the default) or over a TCP socket
//! (`--listen ADDR`). Each request names a program in the native
//! constraint format or an SMT-LIB strings script, plus optional
//! per-request overrides for `jobs`, the inclusion engine, and the
//! resource budget. Every request produces exactly one typed response
//! (`sat` / `unsat` / `resource-exhausted` / `parse-error`) — malformed
//! input, budget breaches, and even solver panics are mapped to schema-
//! compliant JSON rather than crashing the process. The wire schema is
//! pinned in `docs/serve.schema.json` and documented in DESIGN.md §10.
//!
//! ## Request fields
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `id` | string, required | echoed verbatim in the response |
//! | `input` | string, required | the program text |
//! | `language` | `"dprle"` \| `"smtlib"` | input syntax (default `dprle`) |
//! | `jobs` | integer ≥ 1 | worklist worker threads for this request |
//! | `inclusion` | `"eager"` \| `"antichain"` \| `"derivative"` \| `"auto"` | inclusion engine override |
//! | `max_product_states` | integer ≥ 1 | budget override |
//! | `max_live_states` | integer ≥ 1 | budget override |
//! | `deadline_ms` | integer ≥ 1 | budget override |
//! | `witness` | bool | include one shortest witness per variable |
//! | `trace` | bool | include human-readable trace events |
//! | `ledger` | bool | embed this request's cost-ledger records |
//!
//! Unknown fields are rejected (fail-closed), mirroring the repo's other
//! schemas.
//!
//! ## Sharing and determinism
//!
//! All sessions solve against one shared store, so concurrent requests
//! reuse each other's fingerprints and memoized operations. Solutions are
//! store-sharing-invariant (PR 1's contract: memoization changes costs,
//! never answers), so a request's `solutions`/`witnesses`/`outputs` are
//! byte-identical whether it runs alone or next to neighbors. Per-request
//! `stats` are request-scoped: a thread-local counter scope
//! ([`dprle_automata::ScopedStoreStats`]) captures exactly this request's
//! store work, so the reported counters never include a concurrent
//! neighbor's work. Hit rates still depend on arrival order (that is the
//! point of sharing); the counted events are the request's own.
//!
//! ## Observability
//!
//! Every request is assigned a service-unique `request_id` (`r0`, `r1`,
//! …) echoed in the response together with a `breakdown` object timing
//! the request lifecycle: `queue-wait-us` (arrival to worker pickup),
//! `parse-us`, `solve-us`, `serialize-us`, and `wall-us` (arrival to
//! rendered response; always ≥ the sum of the other four). The same
//! request id is stamped on the request's trace-journal events
//! (`--trace-out`) and cost-ledger records, so a shared journal or
//! multi-tenant ledger joins back against responses. Lifecycle phases
//! feed the `serve.request.*` histograms and `serve.requests.*`
//! per-outcome counters in the metrics registry, and the N slowest
//! requests are kept in a ring served by the admin plane's `/slow`
//! endpoint (mirrored to `--slow-log FILE --slow-ms N` as schema-pinned
//! JSONL, `docs/slowlog.schema.json`). The admin plane (`--admin
//! HOST:PORT`) is a minimal HTTP/1.1 listener exposing `GET /metrics`
//! (Prometheus exposition), `/healthz`, `/readyz` (503 while draining),
//! and `/slow`.
//!
//! ## Shutdown
//!
//! Stdio mode drains on stdin EOF; both modes drain on SIGTERM/SIGINT
//! (requests already read are answered, then the process exits so the
//! caller can flush metrics and ledger files). The admin listener stays
//! up through the drain — `/readyz` reports `draining` — and stops after
//! the main loop returns.

use crate::parse_file;
use crate::smtlib;
use dprle_automata::LangStore;
use dprle_core::metrics::id;
use dprle_core::{
    json_string, lookup, try_solve_traced, Budget, CollectLedger, EngineKind, Json, Ledger,
    Metrics, ResourceExhausted, Solution, SolveOptions, SolveStats, System, TraceSink, Tracer,
};
use std::cell::Cell;
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked workers and connection readers wake to poll the
/// shutdown flag. Bounds shutdown latency, not throughput (a queued
/// request is picked up immediately).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How many of the slowest requests the service retains for the admin
/// plane's `/slow` endpoint. Small and fixed: the ring is a triage tool,
/// the full population lives in `--slow-log`.
pub const SLOW_RING_CAPACITY: usize = 32;

/// The JSON Schema (draft-07 subset) pinning the `--slow-log` JSONL
/// format; also the shape of each element of the admin `/slow` array.
pub const SLOWLOG_SCHEMA: &str = include_str!("../../../docs/slowlog.schema.json");

/// Saturating whole-microsecond wall time since `start`.
fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Server-level configuration: session count plus the *default* solve
/// options a request inherits when it does not override them.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent worker sessions draining the request queue (stdio
    /// mode); TCP mode instead runs one session per connection.
    pub sessions: usize,
    /// LRU byte cap installed on the shared store (`--store-max-bytes`).
    /// `None` means unbounded — the seed behavior.
    pub store_max_bytes: Option<u64>,
    /// Whether the shared store interns/memoizes at all
    /// (`--no-interning` ablation when false).
    pub interning: bool,
    /// Default worklist worker threads per request.
    pub jobs: usize,
    /// Default inclusion engine.
    pub inclusion: EngineKind,
    /// Default `Budget::max_product_states`.
    pub max_product_states: Option<u64>,
    /// Default `Budget::max_live_states`.
    pub max_live_states: Option<u64>,
    /// Default wall-clock budget per request, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Collect a server-wide cost ledger across all requests (backs
    /// `--ledger-out`; per-request embedding is the `ledger` request
    /// field and works either way).
    pub collect_ledger: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sessions: 4,
            store_max_bytes: None,
            interning: true,
            jobs: 1,
            inclusion: EngineKind::default(),
            max_product_states: None,
            max_live_states: None,
            deadline_ms: None,
            collect_ledger: false,
        }
    }
}

/// The multi-session solver service: one shared [`LangStore`], one shared
/// metrics registry, and a stateless-per-request `handle_line` that any
/// number of threads may call concurrently.
pub struct SolverService {
    config: ServeConfig,
    store: Arc<LangStore>,
    metrics: Metrics,
    /// Accumulated cost-ledger JSONL across every request (only when
    /// `config.collect_ledger`); flushed by the caller at shutdown.
    ledger_jsonl: Mutex<String>,
    requests: AtomicU64,
    /// The [`SLOW_RING_CAPACITY`] slowest completed requests by wall
    /// time, sorted slowest-first. Always maintained (it is cheap);
    /// served by the admin plane's `/slow` endpoint.
    slow_ring: Mutex<Vec<SlowRecord>>,
    /// JSONL sink for requests at least `slow_threshold_us` slow
    /// (`--slow-log FILE --slow-ms N`); `None` when not configured.
    slow_log: Mutex<Option<Box<dyn Write + Send>>>,
    /// Threshold for `slow_log`, in microseconds. `u64::MAX` disables.
    slow_threshold_us: AtomicU64,
    /// Shared trace-journal sink (serve `--trace-out`); each request
    /// records into it through its own tagged tracer.
    trace_sink: Mutex<Option<Arc<dyn TraceSink>>>,
}

impl SolverService {
    /// Builds the service: constructs the shared store, installs the
    /// byte cap and the metrics registry on it.
    pub fn new(config: ServeConfig, metrics: Metrics) -> SolverService {
        let store = LangStore::interning(config.interning);
        store.set_max_bytes(config.store_max_bytes);
        store.set_metrics(metrics.clone());
        SolverService {
            config,
            store: Arc::new(store),
            metrics,
            ledger_jsonl: Mutex::new(String::new()),
            requests: AtomicU64::new(0),
            slow_ring: Mutex::new(Vec::new()),
            slow_log: Mutex::new(None),
            slow_threshold_us: AtomicU64::new(u64::MAX),
            trace_sink: Mutex::new(None),
        }
    }

    /// Installs the slow-request JSONL sink: requests whose wall time is
    /// at least `threshold_ms` milliseconds are appended as one
    /// `docs/slowlog.schema.json` record per line.
    pub fn set_slow_log(&self, sink: Box<dyn Write + Send>, threshold_ms: u64) {
        *self.slow_log.lock().expect("slow-log lock") = Some(sink);
        self.slow_threshold_us
            .store(threshold_ms.saturating_mul(1000), Ordering::Relaxed);
    }

    /// Installs the shared trace-journal sink (serve `--trace-out`).
    /// Every subsequent request solves under a tracer tagged with its
    /// request id, so the interleaved journal stays joinable.
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.trace_sink.lock().expect("trace-sink lock") = Some(sink);
    }

    /// A snapshot of the slow-request ring, slowest first.
    pub fn slow_snapshot(&self) -> Vec<SlowRecord> {
        self.slow_ring.lock().expect("slow ring lock").clone()
    }

    /// The `/slow` payload: a JSON array of slow-request records,
    /// slowest first (each record is also one `--slow-log` line).
    pub fn slow_json(&self) -> String {
        let records: Vec<String> = self
            .slow_snapshot()
            .iter()
            .map(SlowRecord::to_json)
            .collect();
        format!("[{}]", records.join(","))
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared store (for tests and shutdown-time reporting).
    pub fn store(&self) -> &Arc<LangStore> {
        &self.store
    }

    /// The shared metrics registry handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Requests handled so far (including malformed ones).
    pub fn requests_handled(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The accumulated server-wide cost ledger as JSONL (empty unless
    /// [`ServeConfig::collect_ledger`] is set).
    pub fn ledger_jsonl(&self) -> String {
        self.ledger_jsonl.lock().expect("ledger lock").clone()
    }

    /// Handles one JSONL request line, returning exactly one JSONL
    /// response line. Never panics: malformed input becomes a
    /// `parse-error` response, budget breaches a `resource-exhausted`
    /// one, and a solver panic is caught and reported as a typed error.
    /// Safe to call from any number of threads concurrently.
    ///
    /// Shorthand for [`SolverService::handle_request`] with an arrival
    /// time of "now" (zero queue wait) — the transports that queue
    /// requests call `handle_request` with the real enqueue instant.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_request(line, Instant::now())
    }

    /// Handles one request that arrived at `enqueued`, timing the four
    /// lifecycle phases (queue wait, parse, solve, serialize), stamping
    /// the response with this request's `request_id` and `breakdown`,
    /// recording the `serve.request.*` histograms and per-outcome
    /// `serve.requests.*` counters, and feeding the slow-request ring
    /// and slow log. The phase invariant `queue-wait + parse + solve +
    /// serialize <= wall` holds by construction: the phases are disjoint
    /// sub-intervals of the request's wall interval.
    pub fn handle_request(&self, line: &str, enqueued: Instant) -> String {
        let queue_wait_us = elapsed_us(enqueued);
        let request_id = format!("r{}", self.requests.fetch_add(1, Ordering::Relaxed));
        let parse_started = Instant::now();
        let parsed = parse_request(line);
        let parse_us = elapsed_us(parse_started);
        let after_parse = Instant::now();
        // Written by solve_request around the solver call proper; what
        // remains of the post-parse interval is serialization.
        let solve_us = Cell::new(0u64);
        let (echo_id, body) = match parsed {
            Ok(request) => {
                let id = request.id.clone();
                let body = catch_unwind(AssertUnwindSafe(|| {
                    self.solve_request(&request, &request_id, &solve_us)
                }))
                .unwrap_or_else(|_| {
                    parse_error_response(
                        Some(&id),
                        "internal error: the solver panicked on this request",
                    )
                });
                (Some(id), body)
            }
            Err((id, message)) => {
                let body = parse_error_response(id.as_deref(), &message);
                (id, body)
            }
        };
        let serialize_us = elapsed_us(after_parse).saturating_sub(solve_us.get());
        let wall_us = elapsed_us(enqueued);
        let breakdown = Breakdown {
            queue_wait_us,
            parse_us,
            solve_us: solve_us.get(),
            serialize_us,
            wall_us,
        };
        let response = splice_observability(&body, &request_id, &breakdown);
        let outcome = response_kind(&body);
        self.record_request(&request_id, echo_id.as_deref(), outcome, &breakdown);
        response
    }

    /// Post-request bookkeeping: metrics, the slow ring, the slow log.
    fn record_request(
        &self,
        request_id: &str,
        echo_id: Option<&str>,
        outcome: &'static str,
        breakdown: &Breakdown,
    ) {
        if self.metrics.is_enabled() {
            self.metrics
                .observe(id::SERVE_QUEUE_WAIT_US, breakdown.queue_wait_us);
            self.metrics.observe(id::SERVE_PARSE_US, breakdown.parse_us);
            self.metrics.observe(id::SERVE_SOLVE_US, breakdown.solve_us);
            self.metrics
                .observe(id::SERVE_SERIALIZE_US, breakdown.serialize_us);
            self.metrics.observe(id::SERVE_WALL_US, breakdown.wall_us);
            let counter = match outcome {
                "sat" => id::SERVE_SAT,
                "unsat" => id::SERVE_UNSAT,
                "resource-exhausted" => id::SERVE_RESOURCE_EXHAUSTED,
                _ => id::SERVE_PARSE_ERROR,
            };
            self.metrics.add(counter, 1);
        }
        let record = SlowRecord {
            request_id: request_id.to_owned(),
            id: echo_id.map(str::to_owned),
            outcome,
            queue_wait_us: breakdown.queue_wait_us,
            parse_us: breakdown.parse_us,
            solve_us: breakdown.solve_us,
            serialize_us: breakdown.serialize_us,
            wall_us: breakdown.wall_us,
        };
        {
            let mut ring = self.slow_ring.lock().expect("slow ring lock");
            ring.push(record.clone());
            ring.sort_by(|a, b| {
                b.wall_us
                    .cmp(&a.wall_us)
                    .then(a.request_id.cmp(&b.request_id))
            });
            ring.truncate(SLOW_RING_CAPACITY);
        }
        if breakdown.wall_us >= self.slow_threshold_us.load(Ordering::Relaxed) {
            let mut log = self.slow_log.lock().expect("slow-log lock");
            if let Some(sink) = log.as_mut() {
                let _ = writeln!(sink, "{}", record.to_json());
                let _ = sink.flush();
            }
        }
    }

    fn solve_request(&self, request: &Request, request_id: &str, solve_us: &Cell<u64>) -> String {
        let started = Instant::now();
        // The per-request sink exists when either the response embeds
        // the ledger or the server accumulates one; records flow to both.
        let ledger_sink =
            (request.ledger || self.config.collect_ledger).then(|| Arc::new(CollectLedger::new()));
        let options = SolveOptions {
            interning: self.config.interning,
            jobs: request.jobs.unwrap_or(self.config.jobs),
            trace: request.trace,
            metrics: self.metrics.clone(),
            budget: Budget {
                max_product_states: request
                    .max_product_states
                    .or(self.config.max_product_states),
                max_live_states: request.max_live_states.or(self.config.max_live_states),
                deadline: request
                    .deadline_ms
                    .or(self.config.deadline_ms)
                    .map(Duration::from_millis),
            },
            inclusion_engine: request.inclusion.unwrap_or(self.config.inclusion),
            // Tagged with the request id so multi-tenant ledgers (the
            // server-wide `--ledger-out` accumulation) stay joinable.
            ledger: ledger_sink.as_ref().map_or_else(Ledger::disabled, |sink| {
                Ledger::new_tagged(sink.clone(), request_id)
            }),
            ..SolveOptions::default()
        };
        // The shared journal gets a per-request tagged tracer; with no
        // `--trace-out` the tracer is disabled and records nothing.
        let journal = self.trace_sink.lock().expect("trace-sink lock").clone();
        let tracer = match &journal {
            Some(sink) => Tracer::new_tagged(Arc::clone(sink), request_id),
            None => Tracer::disabled(),
        };
        let response = if request.smtlib {
            self.solve_smtlib(request, &options, started, &tracer, solve_us)
        } else {
            self.solve_dprle(request, &options, started, &tracer, solve_us)
        };
        if let Some(sink) = &ledger_sink {
            if self.config.collect_ledger {
                self.ledger_jsonl
                    .lock()
                    .expect("ledger lock")
                    .push_str(&sink.to_jsonl());
            }
        }
        match (&ledger_sink, request.ledger) {
            (Some(sink), true) => embed_ledger(&response, sink),
            _ => response,
        }
    }

    fn solve_dprle(
        &self,
        request: &Request,
        options: &SolveOptions,
        started: Instant,
        tracer: &Tracer,
        solve_us: &Cell<u64>,
    ) -> String {
        let system = match parse_file(&request.input) {
            Ok(parsed) => parsed.system,
            Err(e) => return parse_error_response(Some(&request.id), &e.to_string()),
        };
        let solve_started = Instant::now();
        let solved = try_solve_traced(&system, options, &self.store, tracer);
        solve_us.set(solve_us.get() + elapsed_us(solve_started));
        match solved {
            Ok((Solution::Assignments(assignments), stats)) => {
                let mut out = ResponseBuilder::new("sat", &request.id);
                out.num("assignments", assignments.len() as u64);
                out.raw(
                    "solutions",
                    &solutions_json(&system, &assignments, Rendering::Language),
                );
                if request.witness {
                    out.raw(
                        "witnesses",
                        &solutions_json(&system, &assignments, Rendering::Witness),
                    );
                }
                out.finish(&stats, started, request.trace)
            }
            Ok((Solution::Unsat, stats)) => {
                ResponseBuilder::new("unsat", &request.id).finish(&stats, started, request.trace)
            }
            Err(exhausted) => exhausted_response(&request.id, &exhausted, started, request.trace),
        }
    }

    fn solve_smtlib(
        &self,
        request: &Request,
        options: &SolveOptions,
        started: Instant,
        tracer: &Tracer,
        solve_us: &Cell<u64>,
    ) -> String {
        // The whole script run counts as "solve": script parsing and
        // check-sat execution interleave, so they are not split further.
        let solve_started = Instant::now();
        let run = smtlib::run_script_shared(&request.input, options, tracer, self.store.clone());
        solve_us.set(solve_us.get() + elapsed_us(solve_started));
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                if let Some(exhausted) = e.exhausted {
                    return exhausted_response(&request.id, &exhausted, started, request.trace);
                }
                return parse_error_response(Some(&request.id), &e.to_string());
            }
        };
        // The script's verdict is its last (check-sat); a script with no
        // check-sat trivially holds (it constrained nothing), so it
        // reports sat with zero outputs.
        let sat = run
            .outputs
            .iter()
            .rev()
            .find_map(|o| match o {
                smtlib::SmtOutput::CheckSat(sat) => Some(*sat),
                smtlib::SmtOutput::Model(_) => None,
            })
            .unwrap_or(true);
        let mut out = ResponseBuilder::new(if sat { "sat" } else { "unsat" }, &request.id);
        let outputs: Vec<String> = run
            .outputs
            .iter()
            .map(|o| json_string(&o.to_string()))
            .collect();
        out.raw("outputs", &format!("[{}]", outputs.join(",")));
        out.finish(&run.stats, started, request.trace)
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

struct Request {
    id: String,
    input: String,
    smtlib: bool,
    jobs: Option<usize>,
    inclusion: Option<EngineKind>,
    max_product_states: Option<u64>,
    max_live_states: Option<u64>,
    deadline_ms: Option<u64>,
    witness: bool,
    trace: bool,
    ledger: bool,
}

/// Parses and validates one request line, fail-closed: unknown fields and
/// type mismatches are errors. The error carries the request id when one
/// was recoverable, so even rejections stay correlated.
fn parse_request(line: &str) -> Result<Request, (Option<String>, String)> {
    let json = Json::parse(line).map_err(|e| (None, format!("request is not valid JSON: {e}")))?;
    let obj = json
        .as_object()
        .ok_or_else(|| (None, "request must be a JSON object".to_owned()))?;
    // Recovered first so every later rejection can echo it.
    let id = lookup(obj, "id").and_then(Json::as_str).map(str::to_owned);
    let fail = |message: String| (id.clone(), message);
    let mut input = None;
    let mut smtlib = false;
    let mut jobs = None;
    let mut inclusion = None;
    let mut max_product_states = None;
    let mut max_live_states = None;
    let mut deadline_ms = None;
    let mut witness = false;
    let mut trace = false;
    let mut ledger = false;
    let positive = |value: &Json, key: &str| {
        value
            .as_u64()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("field `{key}` must be an integer >= 1"))
    };
    let boolean = |value: &Json, key: &str| {
        value
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean"))
    };
    for (key, value) in obj {
        match key.as_str() {
            "id" => {
                if value.as_str().is_none() {
                    return Err(fail("field `id` must be a string".to_owned()));
                }
            }
            "input" => match value.as_str() {
                Some(s) => input = Some(s.to_owned()),
                None => return Err(fail("field `input` must be a string".to_owned())),
            },
            "language" => match value.as_str() {
                Some("dprle") => smtlib = false,
                Some("smtlib") => smtlib = true,
                _ => {
                    return Err(fail(
                        "field `language` must be \"dprle\" or \"smtlib\"".to_owned(),
                    ))
                }
            },
            "jobs" => jobs = Some(positive(value, key).map_err(&fail)? as usize),
            "inclusion" => match value.as_str().and_then(EngineKind::parse) {
                Some(engine) => inclusion = Some(engine),
                None => {
                    return Err(fail(
                        "field `inclusion` must be \"eager\", \"antichain\", \"derivative\", or \"auto\""
                            .to_owned(),
                    ))
                }
            },
            "max_product_states" => max_product_states = Some(positive(value, key).map_err(&fail)?),
            "max_live_states" => max_live_states = Some(positive(value, key).map_err(&fail)?),
            "deadline_ms" => deadline_ms = Some(positive(value, key).map_err(&fail)?),
            "witness" => witness = boolean(value, key).map_err(&fail)?,
            "trace" => trace = boolean(value, key).map_err(&fail)?,
            "ledger" => ledger = boolean(value, key).map_err(&fail)?,
            other => return Err(fail(format!("unknown field `{other}`"))),
        }
    }
    let Some(id) = id else {
        return Err((None, "field `id` (string) is required".to_owned()));
    };
    let Some(input) = input else {
        return Err((Some(id), "field `input` (string) is required".to_owned()));
    };
    Ok(Request {
        id,
        input,
        smtlib,
        jobs,
        inclusion,
        max_product_states,
        max_live_states,
        deadline_ms,
        witness,
        trace,
        ledger,
    })
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Incremental JSON-object writer for responses. Field order is pinned
/// (kind, id, payload…, stats, trace) so responses are byte-stable for a
/// given outcome — the concurrency tests compare them directly.
struct ResponseBuilder {
    out: String,
}

impl ResponseBuilder {
    fn new(kind: &str, id: &str) -> ResponseBuilder {
        let mut out = String::from("{\"kind\":");
        out.push_str(&json_string(kind));
        out.push_str(",\"id\":");
        out.push_str(&json_string(id));
        ResponseBuilder { out }
    }

    fn num(&mut self, key: &str, value: u64) {
        self.raw(key, &value.to_string());
    }

    fn str(&mut self, key: &str, value: &str) {
        let quoted = json_string(value);
        self.raw(key, &quoted);
    }

    fn raw(&mut self, key: &str, rendered: &str) {
        self.out.push(',');
        self.out.push_str(&json_string(key));
        self.out.push(':');
        self.out.push_str(rendered);
    }

    fn finish(mut self, stats: &SolveStats, started: Instant, trace: bool) -> String {
        self.raw("stats", &stats_json(stats, started));
        if trace {
            let events: Vec<String> = stats.events.iter().map(|e| json_string(e)).collect();
            self.raw("trace", &format!("[{}]", events.join(",")));
        }
        self.out.push('}');
        self.out
    }
}

/// Renders the per-request stats object: every [`SolveStats`] counter in
/// `counter_fields` order plus the request's wall time.
fn stats_json(stats: &SolveStats, started: Instant) -> String {
    let mut out = String::from("{");
    for (name, value) in stats.counter_fields() {
        out.push_str(&json_string(name));
        out.push(':');
        out.push_str(&value.to_string());
        out.push(',');
    }
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    out.push_str(&format!("\"wall-us\":{wall_us}}}"));
    out
}

/// How [`solutions_json`] renders each variable's solved machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Rendering {
    /// The deterministic language description (`display_language`).
    Language,
    /// One shortest witness string (lossy UTF-8), or `null` for the
    /// empty language.
    Witness,
}

/// Renders the assignments as a JSON array of arrays of
/// `{"var": name, "language"|"witness": …}` objects, in variable order —
/// deterministic, so solo and concurrent runs compare byte-for-byte.
fn solutions_json(
    system: &System,
    assignments: &[dprle_core::Assignment],
    rendering: Rendering,
) -> String {
    let mut out = String::from("[");
    for (i, assignment) in assignments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        let mut first = true;
        for v in system.var_ids() {
            let Some(machine) = assignment.get(v) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"var\":");
            out.push_str(&json_string(system.var_name(v)));
            match rendering {
                Rendering::Language => {
                    out.push_str(",\"language\":");
                    out.push_str(&json_string(&dprle_regex::display_language(machine, 400)));
                }
                Rendering::Witness => {
                    out.push_str(",\"witness\":");
                    match assignment.witness(v) {
                        Some(w) => {
                            out.push_str(&json_string(&String::from_utf8_lossy(&w)));
                        }
                        None => out.push_str("null"),
                    }
                }
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push(']');
    out
}

fn exhausted_response(
    id: &str,
    exhausted: &ResourceExhausted,
    started: Instant,
    trace: bool,
) -> String {
    let mut out = ResponseBuilder::new("resource-exhausted", id);
    out.str("budget", exhausted.kind.name());
    out.num("limit", exhausted.limit);
    out.num("observed", exhausted.observed);
    out.finish(&exhausted.stats, started, trace)
}

fn parse_error_response(id: Option<&str>, message: &str) -> String {
    let mut out = String::from("{\"kind\":\"parse-error\",\"id\":");
    match id {
        Some(id) => out.push_str(&json_string(id)),
        None => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    out.push_str(&json_string(message));
    out.push('}');
    out
}

/// Splices this request's cost-ledger records into an already-rendered
/// response as a `"ledger": [...]` field (each record line is itself a
/// valid JSON object, so they embed raw). Appending to the rendered
/// object keeps the happy path allocation-free when no embed was asked.
fn embed_ledger(response: &str, sink: &CollectLedger) -> String {
    let jsonl = sink.to_jsonl();
    let records: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = response
        .strip_suffix('}')
        .expect("responses are JSON objects")
        .to_owned();
    out.push_str(",\"ledger\":[");
    out.push_str(&records.join(","));
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Request lifecycle observability
// ---------------------------------------------------------------------

/// Wall time of the four request lifecycle phases plus the total, all in
/// microseconds. The phases are disjoint sub-intervals of the wall
/// interval, so their sum never exceeds `wall_us`.
struct Breakdown {
    queue_wait_us: u64,
    parse_us: u64,
    solve_us: u64,
    serialize_us: u64,
    wall_us: u64,
}

/// Classifies an already-rendered response by its `kind`. Responses are
/// rendered by this module with `kind` pinned as the first field, so a
/// prefix match is exact.
fn response_kind(response: &str) -> &'static str {
    for kind in ["sat", "unsat", "resource-exhausted", "parse-error"] {
        if response
            .strip_prefix("{\"kind\":\"")
            .and_then(|rest| rest.strip_prefix(kind))
            .is_some_and(|rest| rest.starts_with('"'))
        {
            return kind;
        }
    }
    debug_assert!(false, "unrecognized response kind: {response}");
    "parse-error"
}

/// Splices the request id and lifecycle breakdown onto an
/// already-rendered response, after every other field (same pattern as
/// [`embed_ledger`], so existing consumers that cut at `,\"stats\":`
/// keep working).
fn splice_observability(response: &str, request_id: &str, breakdown: &Breakdown) -> String {
    let mut out = response
        .strip_suffix('}')
        .expect("responses are JSON objects")
        .to_owned();
    out.push_str(",\"request_id\":");
    out.push_str(&json_string(request_id));
    out.push_str(&format!(
        ",\"breakdown\":{{\"queue-wait-us\":{},\"parse-us\":{},\"solve-us\":{},\"serialize-us\":{},\"wall-us\":{}}}}}",
        breakdown.queue_wait_us,
        breakdown.parse_us,
        breakdown.solve_us,
        breakdown.serialize_us,
        breakdown.wall_us,
    ));
    out
}

/// One completed request as retained by the slow-request ring and
/// written to `--slow-log`: identity, outcome, and the full lifecycle
/// breakdown. Pinned by `docs/slowlog.schema.json`.
#[derive(Clone, Debug)]
pub struct SlowRecord {
    /// The service-unique request id (`rN`).
    pub request_id: String,
    /// The client-supplied `id`, when one was recoverable.
    pub id: Option<String>,
    /// The response kind: `sat`, `unsat`, `resource-exhausted`, or
    /// `parse-error`.
    pub outcome: &'static str,
    /// Microseconds between arrival and worker pickup.
    pub queue_wait_us: u64,
    /// Microseconds spent parsing and validating the request line.
    pub parse_us: u64,
    /// Microseconds inside the solver (or SMT-LIB script run).
    pub solve_us: u64,
    /// Microseconds rendering the response.
    pub serialize_us: u64,
    /// Microseconds from arrival to the rendered response.
    pub wall_us: u64,
}

impl SlowRecord {
    /// Renders the record as one `docs/slowlog.schema.json` JSONL line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"kind\":\"SlowRequest\",\"request_id\":");
        out.push_str(&json_string(&self.request_id));
        out.push_str(",\"id\":");
        match &self.id {
            Some(id) => out.push_str(&json_string(id)),
            None => out.push_str("null"),
        }
        out.push_str(",\"outcome\":");
        out.push_str(&json_string(self.outcome));
        out.push_str(&format!(
            ",\"queue_wait_us\":{},\"parse_us\":{},\"solve_us\":{},\"serialize_us\":{},\"wall_us\":{}}}",
            self.queue_wait_us, self.parse_us, self.solve_us, self.serialize_us, self.wall_us,
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Serves JSONL over stdin/stdout with [`ServeConfig::sessions`] worker
/// threads draining one shared queue. Returns after stdin EOF (all read
/// requests answered) or after `shutdown` was raised and the queue
/// drained; either way every response was flushed before returning.
pub fn serve_stdio(service: &Arc<SolverService>, shutdown: &'static AtomicBool) {
    // Each queued line carries its arrival instant so the worker that
    // picks it up can report the queue wait in the response breakdown.
    let (tx, rx) = mpsc::channel::<(String, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    // The reader owns `tx`: dropping it on EOF is the drain signal the
    // workers see as `Disconnected` once the queue empties.
    let reader = std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send((line, Instant::now())).is_err() {
                break;
            }
        }
    });
    let workers: Vec<_> = (0..service.config().sessions.max(1))
        .map(|_| {
            let service = Arc::clone(service);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || loop {
                let job = rx.lock().expect("queue lock").recv_timeout(POLL_INTERVAL);
                match job {
                    Ok((line, enqueued)) => {
                        let response = service.handle_request(&line, enqueued);
                        let stdout = std::io::stdout();
                        let mut out = stdout.lock();
                        let _ = writeln!(out, "{response}");
                        let _ = out.flush();
                    }
                    // recv_timeout prefers queued jobs over the timeout,
                    // so a raised flag still drains everything already
                    // read before the worker exits.
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }
    // After SIGTERM the reader may still be parked in a blocked stdin
    // read that no flag can interrupt; it dies with the process, so it is
    // only joined on the EOF path where it is known to have finished.
    if !shutdown.load(Ordering::SeqCst) {
        let _ = reader.join();
    }
}

/// Serves JSONL over a TCP socket: one session thread per connection,
/// each answering its own requests in order on its own stream. Accepts
/// until `shutdown` is raised, then waits for live connections to finish
/// their in-flight requests and close.
///
/// # Errors
///
/// Returns the underlying I/O error if the listener cannot be switched
/// to non-blocking mode (required to poll the shutdown flag).
pub fn serve_tcp(
    service: &Arc<SolverService>,
    listener: TcpListener,
    shutdown: &'static AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let service = Arc::clone(service);
                let live = Arc::clone(&live);
                live.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = serve_connection(&service, stream, shutdown);
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL / 2);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    while live.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// One TCP session: reads newline-delimited requests, writes one
/// response line per request on the same stream. Uses a short read
/// timeout so a raised shutdown flag closes idle connections promptly;
/// a connection mid-request finishes it first (drain semantics).
fn serve_connection(
    service: &SolverService,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw[..pos]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    // TCP sessions handle requests inline (no queue), so
                    // arrival is the moment the full line was framed and
                    // queue-wait is effectively zero.
                    let response = service.handle_request(line, Instant::now());
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (no partial request buffered) + shutdown = close.
                if shutdown.load(Ordering::SeqCst) && pending.is_empty() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Admin plane
// ---------------------------------------------------------------------

/// Serves the admin plane (`--admin HOST:PORT`): a minimal HTTP/1.1
/// listener answering `GET` requests with `Connection: close`
/// semantics. Routes:
///
/// * `/metrics` — the shared registry as Prometheus exposition text
///   (identical renderer to `--metrics-out` `.prom` snapshots, so a
///   quiesced scrape byte-compares with the shutdown snapshot).
/// * `/healthz` — liveness: `200 ok` while the process runs.
/// * `/readyz` — readiness: `200 ready`, or `503 draining` once the
///   shutdown flag is raised (load balancers stop routing during the
///   SIGTERM drain while in-flight requests finish).
/// * `/slow` — the slow-request ring as a JSON array, slowest first.
///
/// Handles each connection synchronously on the accept thread —
/// admin requests are tiny and rare, and serializing them keeps the
/// plane from ever amplifying load on a busy solver. Returns once
/// `stop` is raised (after the main serve loop drains). The handler
/// itself records no metrics, so scraping does not perturb what it
/// measures.
pub fn serve_admin(
    service: &Arc<SolverService>,
    listener: TcpListener,
    draining: &AtomicBool,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let _ = answer_admin_connection(service, stream, draining);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL / 2);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one HTTP request head, writes one response, closes. Only the
/// request line is interpreted; headers are read to the blank line and
/// ignored (admin clients are curl and `dprle watch`).
fn answer_admin_connection(
    service: &SolverService,
    mut stream: TcpStream,
    draining: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && !head.windows(2).any(|w| w == b"\n\n") {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.len() > 8192 {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
            "/readyz" => {
                if draining.load(Ordering::SeqCst) {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "draining\n".to_owned(),
                    )
                } else {
                    ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned())
                }
            }
            "/metrics" => match service.metrics().snapshot() {
                Some(snapshot) => (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    snapshot.to_prometheus(),
                ),
                None => (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "metrics registry disabled\n".to_owned(),
                ),
            },
            "/slow" => ("200 OK", "application/json", service.slow_json()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_owned(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

/// The process-wide graceful-shutdown flag, raised by SIGTERM/SIGINT.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that raise a process-wide shutdown
/// flag, and returns the flag for the serve loops to poll. Idempotent.
/// Storing to an atomic is async-signal-safe; everything else (draining,
/// flushing) happens on the normal threads that observe the flag.
#[cfg(unix)]
pub fn install_sigterm_flag() -> &'static AtomicBool {
    extern "C" fn raise_shutdown(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` with a handler that only stores to a static
    // atomic; both arguments are valid for the platform's prototype.
    unsafe {
        signal(SIGTERM, raise_shutdown);
        signal(SIGINT, raise_shutdown);
    }
    &SHUTDOWN
}

/// Non-Unix fallback: no handlers to install; the flag only ever rises
/// if some other in-process caller sets it.
#[cfg(not(unix))]
pub fn install_sigterm_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAT_PROGRAM: &str =
        "var v1; c1 := match(/[\\d]+$/); c2 := \"nid_\"; c3 := match(/'/); v1 <= c1; c2 . v1 <= c3;";
    const UNSAT_PROGRAM: &str = "var v; a := \"x\"; b := \"y\"; v <= a; v <= b;";

    fn service() -> Arc<SolverService> {
        Arc::new(SolverService::new(
            ServeConfig::default(),
            Metrics::disabled(),
        ))
    }

    fn request(fields: &str) -> String {
        format!("{{{fields}}}")
    }

    fn field<'a>(response: &'a Json, key: &str) -> &'a Json {
        lookup(response.as_object().expect("object"), key).expect(key)
    }

    #[test]
    fn sat_request_produces_a_typed_sat_response() {
        let line = request(&format!(
            "\"id\":\"q1\",\"input\":{},\"witness\":true",
            json_string(SAT_PROGRAM)
        ));
        let response = service().handle_line(&line);
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        assert_eq!(field(&json, "id").as_str(), Some("q1"));
        assert!(field(&json, "assignments").as_u64().unwrap() >= 1);
        let witnesses = field(&json, "witnesses").as_array().expect("witnesses");
        let first = witnesses[0].as_array().expect("assignment")[0]
            .as_object()
            .expect("binding");
        let witness = lookup(first, "witness")
            .and_then(Json::as_str)
            .expect("witness");
        assert!(
            witness.contains('\''),
            "exploit contains a quote: {witness}"
        );
        // Stats are present with the pinned wall-time field.
        let stats = field(&json, "stats").as_object().expect("stats");
        assert!(lookup(stats, "wall-us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn unsat_request_produces_a_typed_unsat_response() {
        let line = request(&format!(
            "\"id\":\"q2\",\"input\":{}",
            json_string(UNSAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("unsat"));
    }

    #[test]
    fn smtlib_requests_run_scripts_and_report_outputs() {
        let script = r#"
            (declare-fun x () String)
            (assert (str.in_re x (re.+ (str.to_re "ab"))))
            (check-sat)
        "#;
        let line = request(&format!(
            "\"id\":\"s1\",\"language\":\"smtlib\",\"input\":{}",
            json_string(script)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        let outputs = field(&json, "outputs").as_array().expect("outputs");
        assert_eq!(outputs[0].as_str(), Some("sat"));
    }

    #[test]
    fn malformed_json_is_a_parse_error_with_null_id() {
        let json = Json::parse(&service().handle_line("{nope")).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert!(matches!(field(&json, "id"), Json::Null));
    }

    #[test]
    fn unknown_fields_are_rejected_but_keep_the_id() {
        let line = request("\"id\":\"q3\",\"input\":\"var v;\",\"bogus\":1");
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert_eq!(field(&json, "id").as_str(), Some("q3"));
        assert!(field(&json, "error").as_str().unwrap().contains("bogus"));
    }

    #[test]
    fn bad_programs_are_parse_errors_not_crashes() {
        let line = request("\"id\":\"q4\",\"input\":\"nope nope;\"");
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert!(field(&json, "error").as_str().unwrap().contains("line 1"));
    }

    #[test]
    fn blown_budgets_are_resource_exhausted_responses() {
        let line = request(&format!(
            "\"id\":\"q5\",\"input\":{},\"max_product_states\":1",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("resource-exhausted"));
        assert_eq!(field(&json, "budget").as_str(), Some("product-states"));
        assert_eq!(field(&json, "limit").as_u64(), Some(1));
    }

    #[test]
    fn ledger_embedding_returns_valid_json_records() {
        let line = request(&format!(
            "\"id\":\"q6\",\"input\":{},\"ledger\":true",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        let records = field(&json, "ledger").as_array().expect("ledger array");
        assert!(!records.is_empty(), "solve emits ledger records");
        assert!(records.iter().all(|r| r.as_object().is_some()));
    }

    #[test]
    fn server_wide_ledger_accumulates_across_requests() {
        let service = Arc::new(SolverService::new(
            ServeConfig {
                collect_ledger: true,
                ..ServeConfig::default()
            },
            Metrics::disabled(),
        ));
        for i in 0..2 {
            let line = request(&format!(
                "\"id\":\"q{i}\",\"input\":{}",
                json_string(SAT_PROGRAM)
            ));
            service.handle_line(&line);
        }
        let jsonl = service.ledger_jsonl();
        assert!(
            dprle_core::validate_ledger_jsonl(dprle_core::LEDGER_SCHEMA, &jsonl)
                .expect("ledger validates")
                > 0,
            "accumulated ledger has records"
        );
    }

    #[test]
    fn per_request_overrides_change_outcomes_not_the_service() {
        let service = service();
        let capped = request(&format!(
            "\"id\":\"a\",\"input\":{},\"max_product_states\":1",
            json_string(SAT_PROGRAM)
        ));
        let free = request(&format!(
            "\"id\":\"b\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        let capped_json = Json::parse(&service.handle_line(&capped)).expect("valid");
        let free_json = Json::parse(&service.handle_line(&free)).expect("valid");
        assert_eq!(
            field(&capped_json, "kind").as_str(),
            Some("resource-exhausted")
        );
        assert_eq!(field(&free_json, "kind").as_str(), Some("sat"));
    }

    #[test]
    fn trace_requests_embed_events() {
        let line = request(&format!(
            "\"id\":\"t\",\"input\":{},\"trace\":true",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        let events = field(&json, "trace").as_array().expect("trace array");
        assert!(!events.is_empty(), "tracing produces events");
    }

    #[test]
    fn tcp_round_trip_with_graceful_shutdown() {
        let service = service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // A test-local flag standing in for the process-wide one.
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(&service, listener, flag))
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        let line = request(&format!(
            "\"id\":\"net\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("response line");
        let json = Json::parse(&response).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        assert_eq!(field(&json, "id").as_str(), Some("net"));
        flag.store(true, Ordering::SeqCst);
        drop(reader);
        drop(stream);
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }

    fn breakdown_fields(json: &Json) -> (u64, u64, u64, u64, u64) {
        let breakdown = field(json, "breakdown").as_object().expect("breakdown");
        let get = |key: &str| {
            lookup(breakdown, key)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("breakdown field {key}"))
        };
        (
            get("queue-wait-us"),
            get("parse-us"),
            get("solve-us"),
            get("serialize-us"),
            get("wall-us"),
        )
    }

    #[test]
    fn responses_carry_request_id_and_breakdown() {
        let service = service();
        let line = request(&format!(
            "\"id\":\"q\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service.handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "request_id").as_str(), Some("r0"));
        let (queue_wait, parse, solve, serialize, wall) = breakdown_fields(&json);
        assert!(solve > 0, "the solver ran");
        assert!(
            queue_wait + parse + solve + serialize <= wall,
            "phases are disjoint sub-intervals of the wall interval: \
             {queue_wait} + {parse} + {solve} + {serialize} > {wall}"
        );
    }

    #[test]
    fn request_ids_are_unique_and_sequential() {
        let service = service();
        for expected in ["r0", "r1", "r2"] {
            let line = request(&format!(
                "\"id\":\"q\",\"input\":{}",
                json_string(UNSAT_PROGRAM)
            ));
            let json = Json::parse(&service.handle_line(&line)).expect("valid JSON");
            assert_eq!(field(&json, "request_id").as_str(), Some(expected));
        }
    }

    #[test]
    fn parse_errors_also_carry_request_id_and_breakdown() {
        let json = Json::parse(&service().handle_line("{nope")).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert_eq!(field(&json, "request_id").as_str(), Some("r0"));
        let (_, _, solve, _, _) = breakdown_fields(&json);
        assert_eq!(solve, 0, "nothing was solved");
    }

    #[test]
    fn lifecycle_metrics_record_histograms_and_outcome_counters() {
        let service = Arc::new(SolverService::new(
            ServeConfig::default(),
            Metrics::enabled(),
        ));
        for (id_field, input) in [("a", SAT_PROGRAM), ("b", UNSAT_PROGRAM)] {
            let line = request(&format!(
                "\"id\":\"{id_field}\",\"input\":{}",
                json_string(input)
            ));
            service.handle_line(&line);
        }
        service.handle_line("{nope");
        let snapshot = service.metrics().snapshot().expect("metrics enabled");
        let entry = |name: &str| {
            snapshot
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("metric {name}"))
        };
        for name in [
            "serve.requests.sat",
            "serve.requests.unsat",
            "serve.requests.parse_error",
        ] {
            assert_eq!(
                entry(name).value,
                dprle_core::MetricValue::Counter { value: 1 },
                "{name}"
            );
        }
        match &entry("serve.request.wall_us").value {
            dprle_core::MetricValue::Histogram { count, .. } => assert_eq!(*count, 3),
            other => panic!("wall_us is a histogram, got {other:?}"),
        }
    }

    #[test]
    fn slow_ring_keeps_records_sorted_by_wall_time() {
        let service = service();
        for i in 0..3 {
            let line = request(&format!(
                "\"id\":\"q{i}\",\"input\":{}",
                json_string(SAT_PROGRAM)
            ));
            service.handle_line(&line);
        }
        let ring = service.slow_snapshot();
        assert_eq!(ring.len(), 3);
        assert!(
            ring.windows(2).all(|w| w[0].wall_us >= w[1].wall_us),
            "slowest first"
        );
        let slow = Json::parse(&service.slow_json()).expect("valid JSON");
        let records = slow.as_array().expect("array");
        assert_eq!(records.len(), 3);
        for record in records {
            let obj = record.as_object().expect("record object");
            assert_eq!(
                lookup(obj, "kind").and_then(Json::as_str),
                Some("SlowRequest")
            );
        }
    }

    /// A `Write` handing everything to a shared buffer, so the test can
    /// observe what the service wrote to its slow log.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn slow_log_captures_requests_over_the_threshold() {
        let service = service();
        let buf = Arc::new(Mutex::new(Vec::new()));
        // Threshold zero: every request qualifies.
        service.set_slow_log(Box::new(SharedBuf(Arc::clone(&buf))), 0);
        let line = request(&format!(
            "\"id\":\"slow\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        service.handle_line(&line);
        let logged = String::from_utf8(buf.lock().expect("buf lock").clone()).expect("utf8");
        let record = Json::parse(logged.trim()).expect("valid JSON");
        let obj = record.as_object().expect("object");
        assert_eq!(lookup(obj, "request_id").and_then(Json::as_str), Some("r0"));
        assert_eq!(lookup(obj, "outcome").and_then(Json::as_str), Some("sat"));
        assert!(lookup(obj, "wall_us").and_then(Json::as_u64).is_some());
        assert_eq!(
            dprle_core::validate_jsonl(SLOWLOG_SCHEMA, &logged).expect("slow log validates"),
            1,
            "one slow-log record, pinned by docs/slowlog.schema.json"
        );
    }

    #[test]
    fn slow_log_records_validate_even_without_a_client_id() {
        let service = service();
        let buf = Arc::new(Mutex::new(Vec::new()));
        service.set_slow_log(Box::new(SharedBuf(Arc::clone(&buf))), 0);
        // Malformed request: no recoverable id, so the record's `id` is
        // null — the schema's ["string","null"] union covers it.
        service.handle_line("{nope");
        let logged = String::from_utf8(buf.lock().expect("buf lock").clone()).expect("utf8");
        assert_eq!(
            dprle_core::validate_jsonl(SLOWLOG_SCHEMA, &logged).expect("slow log validates"),
            1
        );
    }

    #[test]
    fn tagged_trace_journal_stamps_request_ids() {
        let service = service();
        let sink = Arc::new(dprle_core::CollectSink::new());
        service.set_trace_sink(sink.clone());
        let line = request(&format!(
            "\"id\":\"t\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        service.handle_line(&line);
        let events = sink.take();
        assert!(!events.is_empty(), "journal captured events");
        assert!(
            events.iter().all(|e| e.request_id.as_deref() == Some("r0")),
            "every event is stamped with the owning request id"
        );
    }

    #[test]
    fn embedded_ledger_records_carry_the_request_id() {
        let line = request(&format!(
            "\"id\":\"q\",\"input\":{},\"ledger\":true",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        let records = field(&json, "ledger").as_array().expect("ledger array");
        assert!(!records.is_empty());
        for record in records {
            let obj = record.as_object().expect("record");
            assert_eq!(
                lookup(obj, "request_id").and_then(Json::as_str),
                Some("r0"),
                "ledger records join back to their request"
            );
        }
    }

    fn admin_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        stream.flush().expect("flush");
        let mut response = String::new();
        std::io::BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn admin_plane_serves_health_metrics_and_slow() {
        let service = Arc::new(SolverService::new(
            ServeConfig::default(),
            Metrics::enabled(),
        ));
        let line = request(&format!(
            "\"id\":\"q\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        service.handle_line(&line);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind admin");
        let addr = listener.local_addr().expect("addr");
        let draining: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let admin = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_admin(&service, listener, draining, stop))
        };
        let (head, body) = admin_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "healthz: {head}");
        assert_eq!(body, "ok\n");
        let (head, body) = admin_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200"), "readyz: {head}");
        assert_eq!(body, "ready\n");
        draining.store(true, Ordering::SeqCst);
        let (head, body) = admin_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 503"), "draining readyz: {head}");
        assert_eq!(body, "draining\n");
        let (head, body) = admin_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "metrics: {head}");
        assert!(
            body.contains("# TYPE dprle_serve_requests_sat_total counter")
                || body.contains("dprle_serve_requests_sat"),
            "metrics exposition mentions the serve counters: {body}"
        );
        let (head, body) = admin_get(addr, "/slow");
        assert!(head.starts_with("HTTP/1.1 200"), "slow: {head}");
        let slow = Json::parse(&body).expect("slow is valid JSON");
        assert_eq!(slow.as_array().expect("array").len(), 1);
        let (head, _) = admin_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "unknown route: {head}");
        stop.store(true, Ordering::SeqCst);
        admin.join().expect("admin thread").expect("clean exit");
    }
}
