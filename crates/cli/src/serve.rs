//! The `dprle serve` front end: many concurrent solver sessions in one
//! process, sharing a single (optionally byte-capped) [`LangStore`].
//!
//! Requests and responses are JSONL — one JSON object per line — carried
//! either over stdin/stdout (the default) or over a TCP socket
//! (`--listen ADDR`). Each request names a program in the native
//! constraint format or an SMT-LIB strings script, plus optional
//! per-request overrides for `jobs`, the inclusion engine, and the
//! resource budget. Every request produces exactly one typed response
//! (`sat` / `unsat` / `resource-exhausted` / `parse-error`) — malformed
//! input, budget breaches, and even solver panics are mapped to schema-
//! compliant JSON rather than crashing the process. The wire schema is
//! pinned in `docs/serve.schema.json` and documented in DESIGN.md §10.
//!
//! ## Request fields
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `id` | string, required | echoed verbatim in the response |
//! | `input` | string, required | the program text |
//! | `language` | `"dprle"` \| `"smtlib"` | input syntax (default `dprle`) |
//! | `jobs` | integer ≥ 1 | worklist worker threads for this request |
//! | `inclusion` | `"eager"` \| `"antichain"` | inclusion engine override |
//! | `max_product_states` | integer ≥ 1 | budget override |
//! | `max_live_states` | integer ≥ 1 | budget override |
//! | `deadline_ms` | integer ≥ 1 | budget override |
//! | `witness` | bool | include one shortest witness per variable |
//! | `trace` | bool | include human-readable trace events |
//! | `ledger` | bool | embed this request's cost-ledger records |
//!
//! Unknown fields are rejected (fail-closed), mirroring the repo's other
//! schemas.
//!
//! ## Sharing and determinism
//!
//! All sessions solve against one shared store, so concurrent requests
//! reuse each other's fingerprints and memoized operations. Solutions are
//! store-sharing-invariant (PR 1's contract: memoization changes costs,
//! never answers), so a request's `solutions`/`witnesses`/`outputs` are
//! byte-identical whether it runs alone or next to neighbors. Per-request
//! `stats` are *not* isolated: counters derived from store before/after
//! diffs can include a concurrent neighbor's work, and hit rates depend
//! on arrival order. Treat response stats as indicative under load and
//! authoritative only for serial use.
//!
//! ## Shutdown
//!
//! Stdio mode drains on stdin EOF; both modes drain on SIGTERM/SIGINT
//! (requests already read are answered, then the process exits so the
//! caller can flush metrics and ledger files).

use crate::parse_file;
use crate::smtlib;
use dprle_automata::LangStore;
use dprle_core::{
    json_string, lookup, try_solve_traced, Budget, CollectLedger, EngineKind, Json, Ledger,
    Metrics, ResourceExhausted, Solution, SolveOptions, SolveStats, System, Tracer,
};
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked workers and connection readers wake to poll the
/// shutdown flag. Bounds shutdown latency, not throughput (a queued
/// request is picked up immediately).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server-level configuration: session count plus the *default* solve
/// options a request inherits when it does not override them.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Concurrent worker sessions draining the request queue (stdio
    /// mode); TCP mode instead runs one session per connection.
    pub sessions: usize,
    /// LRU byte cap installed on the shared store (`--store-max-bytes`).
    /// `None` means unbounded — the seed behavior.
    pub store_max_bytes: Option<u64>,
    /// Whether the shared store interns/memoizes at all
    /// (`--no-interning` ablation when false).
    pub interning: bool,
    /// Default worklist worker threads per request.
    pub jobs: usize,
    /// Default inclusion engine.
    pub inclusion: EngineKind,
    /// Default `Budget::max_product_states`.
    pub max_product_states: Option<u64>,
    /// Default `Budget::max_live_states`.
    pub max_live_states: Option<u64>,
    /// Default wall-clock budget per request, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Collect a server-wide cost ledger across all requests (backs
    /// `--ledger-out`; per-request embedding is the `ledger` request
    /// field and works either way).
    pub collect_ledger: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sessions: 4,
            store_max_bytes: None,
            interning: true,
            jobs: 1,
            inclusion: EngineKind::default(),
            max_product_states: None,
            max_live_states: None,
            deadline_ms: None,
            collect_ledger: false,
        }
    }
}

/// The multi-session solver service: one shared [`LangStore`], one shared
/// metrics registry, and a stateless-per-request `handle_line` that any
/// number of threads may call concurrently.
pub struct SolverService {
    config: ServeConfig,
    store: Arc<LangStore>,
    metrics: Metrics,
    /// Accumulated cost-ledger JSONL across every request (only when
    /// `config.collect_ledger`); flushed by the caller at shutdown.
    ledger_jsonl: Mutex<String>,
    requests: AtomicU64,
}

impl SolverService {
    /// Builds the service: constructs the shared store, installs the
    /// byte cap and the metrics registry on it.
    pub fn new(config: ServeConfig, metrics: Metrics) -> SolverService {
        let store = LangStore::interning(config.interning);
        store.set_max_bytes(config.store_max_bytes);
        store.set_metrics(metrics.clone());
        SolverService {
            config,
            store: Arc::new(store),
            metrics,
            ledger_jsonl: Mutex::new(String::new()),
            requests: AtomicU64::new(0),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared store (for tests and shutdown-time reporting).
    pub fn store(&self) -> &Arc<LangStore> {
        &self.store
    }

    /// The shared metrics registry handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Requests handled so far (including malformed ones).
    pub fn requests_handled(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// The accumulated server-wide cost ledger as JSONL (empty unless
    /// [`ServeConfig::collect_ledger`] is set).
    pub fn ledger_jsonl(&self) -> String {
        self.ledger_jsonl.lock().expect("ledger lock").clone()
    }

    /// Handles one JSONL request line, returning exactly one JSONL
    /// response line. Never panics: malformed input becomes a
    /// `parse-error` response, budget breaches a `resource-exhausted`
    /// one, and a solver panic is caught and reported as a typed error.
    /// Safe to call from any number of threads concurrently.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let request = match parse_request(line) {
            Ok(request) => request,
            Err((id, message)) => return parse_error_response(id.as_deref(), &message),
        };
        let id = request.id.clone();
        match catch_unwind(AssertUnwindSafe(|| self.solve_request(&request))) {
            Ok(response) => response,
            Err(_) => parse_error_response(
                Some(&id),
                "internal error: the solver panicked on this request",
            ),
        }
    }

    fn solve_request(&self, request: &Request) -> String {
        let started = Instant::now();
        // The per-request sink exists when either the response embeds
        // the ledger or the server accumulates one; records flow to both.
        let ledger_sink =
            (request.ledger || self.config.collect_ledger).then(|| Arc::new(CollectLedger::new()));
        let options = SolveOptions {
            interning: self.config.interning,
            jobs: request.jobs.unwrap_or(self.config.jobs),
            trace: request.trace,
            metrics: self.metrics.clone(),
            budget: Budget {
                max_product_states: request
                    .max_product_states
                    .or(self.config.max_product_states),
                max_live_states: request.max_live_states.or(self.config.max_live_states),
                deadline: request
                    .deadline_ms
                    .or(self.config.deadline_ms)
                    .map(Duration::from_millis),
            },
            inclusion_engine: request.inclusion.unwrap_or(self.config.inclusion),
            ledger: ledger_sink
                .as_ref()
                .map_or_else(Ledger::disabled, |sink| Ledger::new(sink.clone())),
            ..SolveOptions::default()
        };
        let response = if request.smtlib {
            self.solve_smtlib(request, &options, started)
        } else {
            self.solve_dprle(request, &options, started)
        };
        if let Some(sink) = &ledger_sink {
            if self.config.collect_ledger {
                self.ledger_jsonl
                    .lock()
                    .expect("ledger lock")
                    .push_str(&sink.to_jsonl());
            }
        }
        match (&ledger_sink, request.ledger) {
            (Some(sink), true) => embed_ledger(&response, sink),
            _ => response,
        }
    }

    fn solve_dprle(&self, request: &Request, options: &SolveOptions, started: Instant) -> String {
        let system = match parse_file(&request.input) {
            Ok(parsed) => parsed.system,
            Err(e) => return parse_error_response(Some(&request.id), &e.to_string()),
        };
        match try_solve_traced(&system, options, &self.store, &Tracer::disabled()) {
            Ok((Solution::Assignments(assignments), stats)) => {
                let mut out = ResponseBuilder::new("sat", &request.id);
                out.num("assignments", assignments.len() as u64);
                out.raw(
                    "solutions",
                    &solutions_json(&system, &assignments, Rendering::Language),
                );
                if request.witness {
                    out.raw(
                        "witnesses",
                        &solutions_json(&system, &assignments, Rendering::Witness),
                    );
                }
                out.finish(&stats, started, request.trace)
            }
            Ok((Solution::Unsat, stats)) => {
                ResponseBuilder::new("unsat", &request.id).finish(&stats, started, request.trace)
            }
            Err(exhausted) => exhausted_response(&request.id, &exhausted, started, request.trace),
        }
    }

    fn solve_smtlib(&self, request: &Request, options: &SolveOptions, started: Instant) -> String {
        let run = match smtlib::run_script_shared(
            &request.input,
            options,
            &Tracer::disabled(),
            self.store.clone(),
        ) {
            Ok(run) => run,
            Err(e) => {
                if let Some(exhausted) = e.exhausted {
                    return exhausted_response(&request.id, &exhausted, started, request.trace);
                }
                return parse_error_response(Some(&request.id), &e.to_string());
            }
        };
        // The script's verdict is its last (check-sat); a script with no
        // check-sat trivially holds (it constrained nothing), so it
        // reports sat with zero outputs.
        let sat = run
            .outputs
            .iter()
            .rev()
            .find_map(|o| match o {
                smtlib::SmtOutput::CheckSat(sat) => Some(*sat),
                smtlib::SmtOutput::Model(_) => None,
            })
            .unwrap_or(true);
        let mut out = ResponseBuilder::new(if sat { "sat" } else { "unsat" }, &request.id);
        let outputs: Vec<String> = run
            .outputs
            .iter()
            .map(|o| json_string(&o.to_string()))
            .collect();
        out.raw("outputs", &format!("[{}]", outputs.join(",")));
        out.finish(&run.stats, started, request.trace)
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

struct Request {
    id: String,
    input: String,
    smtlib: bool,
    jobs: Option<usize>,
    inclusion: Option<EngineKind>,
    max_product_states: Option<u64>,
    max_live_states: Option<u64>,
    deadline_ms: Option<u64>,
    witness: bool,
    trace: bool,
    ledger: bool,
}

/// Parses and validates one request line, fail-closed: unknown fields and
/// type mismatches are errors. The error carries the request id when one
/// was recoverable, so even rejections stay correlated.
fn parse_request(line: &str) -> Result<Request, (Option<String>, String)> {
    let json = Json::parse(line).map_err(|e| (None, format!("request is not valid JSON: {e}")))?;
    let obj = json
        .as_object()
        .ok_or_else(|| (None, "request must be a JSON object".to_owned()))?;
    // Recovered first so every later rejection can echo it.
    let id = lookup(obj, "id").and_then(Json::as_str).map(str::to_owned);
    let fail = |message: String| (id.clone(), message);
    let mut input = None;
    let mut smtlib = false;
    let mut jobs = None;
    let mut inclusion = None;
    let mut max_product_states = None;
    let mut max_live_states = None;
    let mut deadline_ms = None;
    let mut witness = false;
    let mut trace = false;
    let mut ledger = false;
    let positive = |value: &Json, key: &str| {
        value
            .as_u64()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("field `{key}` must be an integer >= 1"))
    };
    let boolean = |value: &Json, key: &str| {
        value
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean"))
    };
    for (key, value) in obj {
        match key.as_str() {
            "id" => {
                if value.as_str().is_none() {
                    return Err(fail("field `id` must be a string".to_owned()));
                }
            }
            "input" => match value.as_str() {
                Some(s) => input = Some(s.to_owned()),
                None => return Err(fail("field `input` must be a string".to_owned())),
            },
            "language" => match value.as_str() {
                Some("dprle") => smtlib = false,
                Some("smtlib") => smtlib = true,
                _ => {
                    return Err(fail(
                        "field `language` must be \"dprle\" or \"smtlib\"".to_owned(),
                    ))
                }
            },
            "jobs" => jobs = Some(positive(value, key).map_err(&fail)? as usize),
            "inclusion" => match value.as_str().and_then(EngineKind::parse) {
                Some(engine) => inclusion = Some(engine),
                None => {
                    return Err(fail(
                        "field `inclusion` must be \"eager\" or \"antichain\"".to_owned(),
                    ))
                }
            },
            "max_product_states" => max_product_states = Some(positive(value, key).map_err(&fail)?),
            "max_live_states" => max_live_states = Some(positive(value, key).map_err(&fail)?),
            "deadline_ms" => deadline_ms = Some(positive(value, key).map_err(&fail)?),
            "witness" => witness = boolean(value, key).map_err(&fail)?,
            "trace" => trace = boolean(value, key).map_err(&fail)?,
            "ledger" => ledger = boolean(value, key).map_err(&fail)?,
            other => return Err(fail(format!("unknown field `{other}`"))),
        }
    }
    let Some(id) = id else {
        return Err((None, "field `id` (string) is required".to_owned()));
    };
    let Some(input) = input else {
        return Err((Some(id), "field `input` (string) is required".to_owned()));
    };
    Ok(Request {
        id,
        input,
        smtlib,
        jobs,
        inclusion,
        max_product_states,
        max_live_states,
        deadline_ms,
        witness,
        trace,
        ledger,
    })
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Incremental JSON-object writer for responses. Field order is pinned
/// (kind, id, payload…, stats, trace) so responses are byte-stable for a
/// given outcome — the concurrency tests compare them directly.
struct ResponseBuilder {
    out: String,
}

impl ResponseBuilder {
    fn new(kind: &str, id: &str) -> ResponseBuilder {
        let mut out = String::from("{\"kind\":");
        out.push_str(&json_string(kind));
        out.push_str(",\"id\":");
        out.push_str(&json_string(id));
        ResponseBuilder { out }
    }

    fn num(&mut self, key: &str, value: u64) {
        self.raw(key, &value.to_string());
    }

    fn str(&mut self, key: &str, value: &str) {
        let quoted = json_string(value);
        self.raw(key, &quoted);
    }

    fn raw(&mut self, key: &str, rendered: &str) {
        self.out.push(',');
        self.out.push_str(&json_string(key));
        self.out.push(':');
        self.out.push_str(rendered);
    }

    fn finish(mut self, stats: &SolveStats, started: Instant, trace: bool) -> String {
        self.raw("stats", &stats_json(stats, started));
        if trace {
            let events: Vec<String> = stats.events.iter().map(|e| json_string(e)).collect();
            self.raw("trace", &format!("[{}]", events.join(",")));
        }
        self.out.push('}');
        self.out
    }
}

/// Renders the per-request stats object: every [`SolveStats`] counter in
/// `counter_fields` order plus the request's wall time.
fn stats_json(stats: &SolveStats, started: Instant) -> String {
    let mut out = String::from("{");
    for (name, value) in stats.counter_fields() {
        out.push_str(&json_string(name));
        out.push(':');
        out.push_str(&value.to_string());
        out.push(',');
    }
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    out.push_str(&format!("\"wall-us\":{wall_us}}}"));
    out
}

/// How [`solutions_json`] renders each variable's solved machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Rendering {
    /// The deterministic language description (`display_language`).
    Language,
    /// One shortest witness string (lossy UTF-8), or `null` for the
    /// empty language.
    Witness,
}

/// Renders the assignments as a JSON array of arrays of
/// `{"var": name, "language"|"witness": …}` objects, in variable order —
/// deterministic, so solo and concurrent runs compare byte-for-byte.
fn solutions_json(
    system: &System,
    assignments: &[dprle_core::Assignment],
    rendering: Rendering,
) -> String {
    let mut out = String::from("[");
    for (i, assignment) in assignments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        let mut first = true;
        for v in system.var_ids() {
            let Some(machine) = assignment.get(v) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"var\":");
            out.push_str(&json_string(system.var_name(v)));
            match rendering {
                Rendering::Language => {
                    out.push_str(",\"language\":");
                    out.push_str(&json_string(&dprle_regex::display_language(machine, 400)));
                }
                Rendering::Witness => {
                    out.push_str(",\"witness\":");
                    match assignment.witness(v) {
                        Some(w) => {
                            out.push_str(&json_string(&String::from_utf8_lossy(&w)));
                        }
                        None => out.push_str("null"),
                    }
                }
            }
            out.push('}');
        }
        out.push(']');
    }
    out.push(']');
    out
}

fn exhausted_response(
    id: &str,
    exhausted: &ResourceExhausted,
    started: Instant,
    trace: bool,
) -> String {
    let mut out = ResponseBuilder::new("resource-exhausted", id);
    out.str("budget", exhausted.kind.name());
    out.num("limit", exhausted.limit);
    out.num("observed", exhausted.observed);
    out.finish(&exhausted.stats, started, trace)
}

fn parse_error_response(id: Option<&str>, message: &str) -> String {
    let mut out = String::from("{\"kind\":\"parse-error\",\"id\":");
    match id {
        Some(id) => out.push_str(&json_string(id)),
        None => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    out.push_str(&json_string(message));
    out.push('}');
    out
}

/// Splices this request's cost-ledger records into an already-rendered
/// response as a `"ledger": [...]` field (each record line is itself a
/// valid JSON object, so they embed raw). Appending to the rendered
/// object keeps the happy path allocation-free when no embed was asked.
fn embed_ledger(response: &str, sink: &CollectLedger) -> String {
    let jsonl = sink.to_jsonl();
    let records: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut out = response
        .strip_suffix('}')
        .expect("responses are JSON objects")
        .to_owned();
    out.push_str(",\"ledger\":[");
    out.push_str(&records.join(","));
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

/// Serves JSONL over stdin/stdout with [`ServeConfig::sessions`] worker
/// threads draining one shared queue. Returns after stdin EOF (all read
/// requests answered) or after `shutdown` was raised and the queue
/// drained; either way every response was flushed before returning.
pub fn serve_stdio(service: &Arc<SolverService>, shutdown: &'static AtomicBool) {
    let (tx, rx) = mpsc::channel::<String>();
    let rx = Arc::new(Mutex::new(rx));
    // The reader owns `tx`: dropping it on EOF is the drain signal the
    // workers see as `Disconnected` once the queue empties.
    let reader = std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let workers: Vec<_> = (0..service.config().sessions.max(1))
        .map(|_| {
            let service = Arc::clone(service);
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || loop {
                let job = rx.lock().expect("queue lock").recv_timeout(POLL_INTERVAL);
                match job {
                    Ok(line) => {
                        let response = service.handle_line(&line);
                        let stdout = std::io::stdout();
                        let mut out = stdout.lock();
                        let _ = writeln!(out, "{response}");
                        let _ = out.flush();
                    }
                    // recv_timeout prefers queued jobs over the timeout,
                    // so a raised flag still drains everything already
                    // read before the worker exits.
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }
    // After SIGTERM the reader may still be parked in a blocked stdin
    // read that no flag can interrupt; it dies with the process, so it is
    // only joined on the EOF path where it is known to have finished.
    if !shutdown.load(Ordering::SeqCst) {
        let _ = reader.join();
    }
}

/// Serves JSONL over a TCP socket: one session thread per connection,
/// each answering its own requests in order on its own stream. Accepts
/// until `shutdown` is raised, then waits for live connections to finish
/// their in-flight requests and close.
///
/// # Errors
///
/// Returns the underlying I/O error if the listener cannot be switched
/// to non-blocking mode (required to poll the shutdown flag).
pub fn serve_tcp(
    service: &Arc<SolverService>,
    listener: TcpListener,
    shutdown: &'static AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicUsize::new(0));
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let service = Arc::clone(service);
                let live = Arc::clone(&live);
                live.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = serve_connection(&service, stream, shutdown);
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL / 2);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    while live.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(())
}

/// One TCP session: reads newline-delimited requests, writes one
/// response line per request on the same stream. Uses a short read
/// timeout so a raised shutdown flag closes idle connections promptly;
/// a connection mid-request finishes it first (drain semantics).
fn serve_connection(
    service: &SolverService,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let raw: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&raw[..pos]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let response = service.handle_line(line);
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle (no partial request buffered) + shutdown = close.
                if shutdown.load(Ordering::SeqCst) && pending.is_empty() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

/// The process-wide graceful-shutdown flag, raised by SIGTERM/SIGINT.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that raise a process-wide shutdown
/// flag, and returns the flag for the serve loops to poll. Idempotent.
/// Storing to an atomic is async-signal-safe; everything else (draining,
/// flushing) happens on the normal threads that observe the flag.
#[cfg(unix)]
pub fn install_sigterm_flag() -> &'static AtomicBool {
    extern "C" fn raise_shutdown(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` with a handler that only stores to a static
    // atomic; both arguments are valid for the platform's prototype.
    unsafe {
        signal(SIGTERM, raise_shutdown);
        signal(SIGINT, raise_shutdown);
    }
    &SHUTDOWN
}

/// Non-Unix fallback: no handlers to install; the flag only ever rises
/// if some other in-process caller sets it.
#[cfg(not(unix))]
pub fn install_sigterm_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAT_PROGRAM: &str =
        "var v1; c1 := match(/[\\d]+$/); c2 := \"nid_\"; c3 := match(/'/); v1 <= c1; c2 . v1 <= c3;";
    const UNSAT_PROGRAM: &str = "var v; a := \"x\"; b := \"y\"; v <= a; v <= b;";

    fn service() -> Arc<SolverService> {
        Arc::new(SolverService::new(
            ServeConfig::default(),
            Metrics::disabled(),
        ))
    }

    fn request(fields: &str) -> String {
        format!("{{{fields}}}")
    }

    fn field<'a>(response: &'a Json, key: &str) -> &'a Json {
        lookup(response.as_object().expect("object"), key).expect(key)
    }

    #[test]
    fn sat_request_produces_a_typed_sat_response() {
        let line = request(&format!(
            "\"id\":\"q1\",\"input\":{},\"witness\":true",
            json_string(SAT_PROGRAM)
        ));
        let response = service().handle_line(&line);
        let json = Json::parse(&response).expect("response is valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        assert_eq!(field(&json, "id").as_str(), Some("q1"));
        assert!(field(&json, "assignments").as_u64().unwrap() >= 1);
        let witnesses = field(&json, "witnesses").as_array().expect("witnesses");
        let first = witnesses[0].as_array().expect("assignment")[0]
            .as_object()
            .expect("binding");
        let witness = lookup(first, "witness")
            .and_then(Json::as_str)
            .expect("witness");
        assert!(
            witness.contains('\''),
            "exploit contains a quote: {witness}"
        );
        // Stats are present with the pinned wall-time field.
        let stats = field(&json, "stats").as_object().expect("stats");
        assert!(lookup(stats, "wall-us").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn unsat_request_produces_a_typed_unsat_response() {
        let line = request(&format!(
            "\"id\":\"q2\",\"input\":{}",
            json_string(UNSAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("unsat"));
    }

    #[test]
    fn smtlib_requests_run_scripts_and_report_outputs() {
        let script = r#"
            (declare-fun x () String)
            (assert (str.in_re x (re.+ (str.to_re "ab"))))
            (check-sat)
        "#;
        let line = request(&format!(
            "\"id\":\"s1\",\"language\":\"smtlib\",\"input\":{}",
            json_string(script)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        let outputs = field(&json, "outputs").as_array().expect("outputs");
        assert_eq!(outputs[0].as_str(), Some("sat"));
    }

    #[test]
    fn malformed_json_is_a_parse_error_with_null_id() {
        let json = Json::parse(&service().handle_line("{nope")).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert!(matches!(field(&json, "id"), Json::Null));
    }

    #[test]
    fn unknown_fields_are_rejected_but_keep_the_id() {
        let line = request("\"id\":\"q3\",\"input\":\"var v;\",\"bogus\":1");
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert_eq!(field(&json, "id").as_str(), Some("q3"));
        assert!(field(&json, "error").as_str().unwrap().contains("bogus"));
    }

    #[test]
    fn bad_programs_are_parse_errors_not_crashes() {
        let line = request("\"id\":\"q4\",\"input\":\"nope nope;\"");
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("parse-error"));
        assert!(field(&json, "error").as_str().unwrap().contains("line 1"));
    }

    #[test]
    fn blown_budgets_are_resource_exhausted_responses() {
        let line = request(&format!(
            "\"id\":\"q5\",\"input\":{},\"max_product_states\":1",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("resource-exhausted"));
        assert_eq!(field(&json, "budget").as_str(), Some("product-states"));
        assert_eq!(field(&json, "limit").as_u64(), Some(1));
    }

    #[test]
    fn ledger_embedding_returns_valid_json_records() {
        let line = request(&format!(
            "\"id\":\"q6\",\"input\":{},\"ledger\":true",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        let records = field(&json, "ledger").as_array().expect("ledger array");
        assert!(!records.is_empty(), "solve emits ledger records");
        assert!(records.iter().all(|r| r.as_object().is_some()));
    }

    #[test]
    fn server_wide_ledger_accumulates_across_requests() {
        let service = Arc::new(SolverService::new(
            ServeConfig {
                collect_ledger: true,
                ..ServeConfig::default()
            },
            Metrics::disabled(),
        ));
        for i in 0..2 {
            let line = request(&format!(
                "\"id\":\"q{i}\",\"input\":{}",
                json_string(SAT_PROGRAM)
            ));
            service.handle_line(&line);
        }
        let jsonl = service.ledger_jsonl();
        assert!(
            dprle_core::validate_ledger_jsonl(dprle_core::LEDGER_SCHEMA, &jsonl)
                .expect("ledger validates")
                > 0,
            "accumulated ledger has records"
        );
    }

    #[test]
    fn per_request_overrides_change_outcomes_not_the_service() {
        let service = service();
        let capped = request(&format!(
            "\"id\":\"a\",\"input\":{},\"max_product_states\":1",
            json_string(SAT_PROGRAM)
        ));
        let free = request(&format!(
            "\"id\":\"b\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        let capped_json = Json::parse(&service.handle_line(&capped)).expect("valid");
        let free_json = Json::parse(&service.handle_line(&free)).expect("valid");
        assert_eq!(
            field(&capped_json, "kind").as_str(),
            Some("resource-exhausted")
        );
        assert_eq!(field(&free_json, "kind").as_str(), Some("sat"));
    }

    #[test]
    fn trace_requests_embed_events() {
        let line = request(&format!(
            "\"id\":\"t\",\"input\":{},\"trace\":true",
            json_string(SAT_PROGRAM)
        ));
        let json = Json::parse(&service().handle_line(&line)).expect("valid JSON");
        let events = field(&json, "trace").as_array().expect("trace array");
        assert!(!events.is_empty(), "tracing produces events");
    }

    #[test]
    fn tcp_round_trip_with_graceful_shutdown() {
        let service = service();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // A test-local flag standing in for the process-wide one.
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(&service, listener, flag))
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        let line = request(&format!(
            "\"id\":\"net\",\"input\":{}",
            json_string(SAT_PROGRAM)
        ));
        stream.write_all(line.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("response line");
        let json = Json::parse(&response).expect("valid JSON");
        assert_eq!(field(&json, "kind").as_str(), Some("sat"));
        assert_eq!(field(&json, "id").as_str(), Some("net"));
        flag.store(true, Ordering::SeqCst);
        drop(reader);
        drop(stream);
        server
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }
}
