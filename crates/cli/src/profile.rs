//! The `dprle profile` subcommand: offline views over query cost ledgers
//! written by `--ledger-out`.
//!
//! * `top` — the hottest queries by total wall time, with an optional
//!   flame-style per-span rollup from a `--trace-out` journal.
//! * `model` — the features→cost table as JSON (one row per distinct
//!   feature vector), the training set for cost-predicted engine
//!   selection.
//! * `diff` — per-query cost deltas between two ledgers, matched by
//!   fingerprint pair and ranked by regression, with an optional
//!   `--fail-above PCT` gate (exit 1 on breach) for CI.
//! * `check` — validate a ledger against `docs/ledger.schema.json`
//!   (embedded by default, or `--schema FILE`).
//!
//! Exit codes follow the main binary: 0 = success, 1 = gate breached or
//! schema violation, 2 = usage/input error.

use dprle_core::{
    parse_ledger, render_diff, render_model, render_top, render_top_by_request,
    validate_ledger_jsonl, DiffOptions, LedgerRecord, LEDGER_SCHEMA,
};
use std::process::ExitCode;

const PROFILE_USAGE: &str =
    "usage: dprle profile top [--trace TRACE.jsonl] [--limit N] [--by-request] LEDGER.jsonl
       dprle profile model LEDGER.jsonl
       dprle profile diff [--limit N] [--fail-above PCT] OLD.jsonl NEW.jsonl
       dprle profile check [--schema FILE] LEDGER.jsonl
  inspects query cost ledgers written by `dprle --ledger-out`";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{PROFILE_USAGE}");
    ExitCode::from(2)
}

/// Reads and parses one ledger file. An empty file is an error — a ledger
/// with zero queries means the producing run recorded nothing, which is
/// never what a profiling session wants to silently succeed on.
fn read_ledger(path: &str) -> Result<Vec<LedgerRecord>, String> {
    let jsonl = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if jsonl.trim().is_empty() {
        return Err(format!("{path}: line 1: ledger is empty (no records)"));
    }
    parse_ledger(&jsonl).map_err(|e| format!("{path}: {e}"))
}

/// Entry point for `dprle profile ...` (argv excludes the subcommand
/// word itself).
pub fn profile_main(argv: &[String]) -> ExitCode {
    match argv.first().map(String::as_str) {
        Some("top") => top_main(&argv[1..]),
        Some("model") => model_main(&argv[1..]),
        Some("diff") => diff_main(&argv[1..]),
        Some("check") => check_main(&argv[1..]),
        Some("-h" | "--help") | None => usage_error("profile needs a view"),
        Some(other) => usage_error(&format!("unknown profile view `{other}`")),
    }
}

fn top_main(argv: &[String]) -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut limit = 20usize;
    let mut by_request = false;
    let mut ledger_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--by-request" => by_request = true,
            "--trace" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => trace_path = Some(p.clone()),
                    None => return usage_error("--trace needs a file"),
                }
            }
            "--limit" => {
                i += 1;
                let Some(n) = argv.get(i).and_then(|n| n.parse::<usize>().ok()) else {
                    return usage_error("--limit needs a count");
                };
                limit = n;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"))
            }
            other => {
                if ledger_path.is_some() {
                    return usage_error("multiple ledger files");
                }
                ledger_path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let Some(ledger_path) = ledger_path else {
        return usage_error("top needs a ledger file");
    };
    let records = match read_ledger(&ledger_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dprle: {e}");
            return ExitCode::from(2);
        }
    };
    if by_request {
        // The rollup answers "which request cost what" — the span rollup
        // is a per-phase view and does not compose with it.
        if trace_path.is_some() {
            return usage_error("--by-request does not take --trace");
        }
        print!("{}", render_top_by_request(&records, limit));
        return ExitCode::SUCCESS;
    }
    let trace_jsonl = match &trace_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("dprle: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    match render_top(&records, trace_jsonl.as_deref(), limit) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dprle: {e}");
            ExitCode::from(2)
        }
    }
}

fn model_main(argv: &[String]) -> ExitCode {
    let [ledger_path] = argv else {
        return usage_error("model needs exactly one ledger file");
    };
    match read_ledger(ledger_path) {
        Ok(records) => {
            print!("{}", render_model(&records));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dprle: {e}");
            ExitCode::from(2)
        }
    }
}

fn diff_main(argv: &[String]) -> ExitCode {
    let mut options = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--limit" => {
                i += 1;
                let Some(n) = argv.get(i).and_then(|n| n.parse::<usize>().ok()) else {
                    return usage_error("--limit needs a count");
                };
                options.limit = n;
            }
            "--fail-above" => {
                i += 1;
                let Some(pct) = argv.get(i).and_then(|p| p.parse::<f64>().ok()) else {
                    return usage_error("--fail-above needs a percentage");
                };
                options.fail_above_pct = Some(pct);
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"))
            }
            other => paths.push(other.to_owned()),
        }
        i += 1;
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage_error("diff needs OLD.jsonl and NEW.jsonl");
    };
    let (old, new) = match (read_ledger(old_path), read_ledger(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dprle: {e}");
            return ExitCode::from(2);
        }
    };
    let report = render_diff(&old, &new, &options);
    print!("{}", report.text);
    if report.gate_breached {
        eprintln!("dprle: profile diff gate breached");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn check_main(argv: &[String]) -> ExitCode {
    let mut schema_path: Option<String> = None;
    let mut ledger_path: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--schema" => {
                i += 1;
                match argv.get(i) {
                    Some(p) => schema_path = Some(p.clone()),
                    None => return usage_error("--schema needs a file"),
                }
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"))
            }
            other => {
                if ledger_path.is_some() {
                    return usage_error("multiple ledger files");
                }
                ledger_path = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let Some(ledger_path) = ledger_path else {
        return usage_error("check needs a ledger file");
    };
    let jsonl = match std::fs::read_to_string(&ledger_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dprle: cannot read {ledger_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if jsonl.trim().is_empty() {
        eprintln!("dprle: {ledger_path}: line 1: ledger is empty (no records)");
        return ExitCode::from(2);
    }
    let schema = match &schema_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dprle: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => LEDGER_SCHEMA.to_owned(),
    };
    match validate_ledger_jsonl(&schema, &jsonl) {
        Ok(n) => match parse_ledger(&jsonl) {
            Ok(_) => {
                println!("schema: {n} records valid");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dprle: schema violation: {ledger_path}: {e}");
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("dprle: schema violation: {e}");
            ExitCode::from(1)
        }
    }
}
