//! SMT-LIB 2.6 strings front end.
//!
//! Modern string solvers (Z3str, CVC5 — the lineage the paper seeded)
//! speak the SMT-LIB theory of strings; this module accepts the regular
//! fragment of that language and translates it onto the DPRLE grammar,
//! making the solver usable as a drop-in for membership-style queries:
//!
//! ```text
//! (declare-const v1 String)
//! (assert (str.in_re v1 (re.+ (re.range "0" "9"))))
//! (assert (str.in_re (str.++ "nid_" v1)
//!                    (re.++ re.all (str.to_re "'") re.all)))
//! (check-sat)
//! (get-model)
//! ```
//!
//! Supported commands: `declare-const`/`declare-fun` (String sort),
//! `assert` of `str.in_re`, `check-sat`, `get-model`, `set-logic`,
//! `set-info`, `set-option`, `exit` (the latter four are accepted and
//! ignored). Terms: String constants, declared variables, `str.++`.
//! Regular expressions: `str.to_re`, `re.++`, `re.union`, `re.inter`,
//! `re.*`, `re.+`, `re.opt`, `re.comp`, `re.diff`, `re.range`, `re.all`,
//! `re.allchar`, `re.none`, and `((_ re.loop n m) r)`.
//!
//! The fragment is exactly the decidable theory the paper treats: no
//! length arithmetic, no `str.replace`, no word equations.

use dprle_automata::{analysis, complement, ops, ByteClass, LangStore, Nfa};
use dprle_core::metrics::id;
use dprle_core::{
    try_solve_traced, Expr, ResourceExhausted, Solution, SolveOptions, SolveStats, System, Tracer,
};
use std::fmt;
use std::sync::Arc;

/// A positioned SMT-LIB front-end error.
#[derive(Clone, Debug)]
pub struct SmtError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Description.
    pub message: String,
    /// Populated when a `(check-sat)` tripped a resource budget rather
    /// than failing to parse: carries the typed breach (with its metrics
    /// snapshot) so callers can distinguish "bad script" from "solver
    /// out of budget" and exit accordingly.
    pub exhausted: Option<Box<ResourceExhausted>>,
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smt-lib error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for SmtError {}

/// The result of executing a script: one entry per output-producing
/// command, ready to print.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtOutput {
    /// From `(check-sat)`.
    CheckSat(bool),
    /// From `(get-model)`: `(define-fun …)` lines.
    Model(Vec<String>),
}

impl fmt::Display for SmtOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtOutput::CheckSat(true) => write!(f, "sat"),
            SmtOutput::CheckSat(false) => write!(f, "unsat"),
            SmtOutput::Model(lines) => {
                writeln!(f, "(")?;
                for l in lines {
                    writeln!(f, "  {l}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The result of executing a script with [`run_script_with_stats`]: the
/// printable outputs plus the aggregated solver statistics and the final
/// constraint system (for post-run reporting such as the provenance DOT
/// export).
#[derive(Debug)]
pub struct ScriptRun {
    /// One entry per output-producing command, in script order.
    pub outputs: Vec<SmtOutput>,
    /// Solver counters summed over every `(check-sat)` in the script
    /// (high-water marks are maxima — see `SolveStats::absorb`).
    pub stats: SolveStats,
    /// The system as of the end of the script.
    pub system: System,
}

/// Parses and executes an SMT-LIB strings script.
///
/// # Errors
///
/// Returns the first syntax or translation error with its byte position.
pub fn run_script(input: &str) -> Result<Vec<SmtOutput>, SmtError> {
    run_script_with_stats(input, &SolveOptions::default(), &Tracer::disabled())
        .map(|run| run.outputs)
}

/// Like [`run_script`], with explicit solver options, a tracer threaded
/// into every `(check-sat)`, and aggregated statistics in the result. All
/// checks share one [`LangStore`], so later check-sats reuse earlier
/// fingerprints and memoized operations.
///
/// # Errors
///
/// Returns the first syntax or translation error with its byte position.
pub fn run_script_with_stats(
    input: &str,
    options: &SolveOptions,
    tracer: &Tracer,
) -> Result<ScriptRun, SmtError> {
    run_script_shared(
        input,
        options,
        tracer,
        Arc::new(LangStore::interning(options.interning)),
    )
}

/// Like [`run_script_with_stats`], but every `(check-sat)` runs against
/// the caller-supplied store instead of a script-private one, so
/// concurrent scripts (the `dprle serve` sessions) reuse each other's
/// fingerprints and memoized operations. Callers disabling interning
/// should pass a pass-through store (`LangStore::interning(false)`).
///
/// # Errors
///
/// Returns the first syntax or translation error with its byte position.
pub fn run_script_shared(
    input: &str,
    options: &SolveOptions,
    tracer: &Tracer,
    store: Arc<LangStore>,
) -> Result<ScriptRun, SmtError> {
    let sexprs = parse_sexprs(input)?;
    let mut engine = Engine {
        system: System::new(),
        outputs: Vec::new(),
        model: None,
        options: options.clone(),
        store,
        tracer: tracer.clone(),
        stats: SolveStats::default(),
    };
    for sexpr in &sexprs {
        engine.command(sexpr)?;
    }
    Ok(ScriptRun {
        outputs: engine.outputs,
        stats: engine.stats,
        system: engine.system,
    })
}

// ---------------------------------------------------------------------
// S-expressions
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Sexpr {
    Atom { text: String, pos: usize },
    Str { value: Vec<u8>, pos: usize },
    List { items: Vec<Sexpr>, pos: usize },
}

impl Sexpr {
    fn pos(&self) -> usize {
        match self {
            Sexpr::Atom { pos, .. } | Sexpr::Str { pos, .. } | Sexpr::List { pos, .. } => *pos,
        }
    }

    fn atom(&self) -> Option<&str> {
        match self {
            Sexpr::Atom { text, .. } => Some(text),
            _ => None,
        }
    }
}

fn err(pos: usize, message: impl Into<String>) -> SmtError {
    SmtError {
        pos,
        message: message.into(),
        exhausted: None,
    }
}

fn parse_sexprs(input: &str) -> Result<Vec<Sexpr>, SmtError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while let Some(sexpr) = parse_one(bytes, &mut pos)? {
        out.push(sexpr);
    }
    Ok(out)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    loop {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < bytes.len() && bytes[*pos] == b';' {
            while *pos < bytes.len() && bytes[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            return;
        }
    }
}

fn parse_one(bytes: &[u8], pos: &mut usize) -> Result<Option<Sexpr>, SmtError> {
    skip_ws(bytes, pos);
    if *pos >= bytes.len() {
        return Ok(None);
    }
    let start = *pos;
    match bytes[*pos] {
        b'(' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if *pos >= bytes.len() {
                    return Err(err(start, "unclosed `(`"));
                }
                if bytes[*pos] == b')' {
                    *pos += 1;
                    return Ok(Some(Sexpr::List { items, pos: start }));
                }
                match parse_one(bytes, pos)? {
                    Some(item) => items.push(item),
                    None => return Err(err(start, "unclosed `(`")),
                }
            }
        }
        b')' => Err(err(start, "unexpected `)`")),
        b'"' => {
            *pos += 1;
            let mut value = Vec::new();
            loop {
                if *pos >= bytes.len() {
                    return Err(err(start, "unterminated string literal"));
                }
                match bytes[*pos] {
                    b'"' if bytes.get(*pos + 1) == Some(&b'"') => {
                        // SMT-LIB escapes a quote by doubling it.
                        value.push(b'"');
                        *pos += 2;
                    }
                    b'"' => {
                        *pos += 1;
                        return Ok(Some(Sexpr::Str { value, pos: start }));
                    }
                    b => {
                        value.push(b);
                        *pos += 1;
                    }
                }
            }
        }
        _ => {
            while *pos < bytes.len()
                && !bytes[*pos].is_ascii_whitespace()
                && !matches!(bytes[*pos], b'(' | b')' | b'"' | b';')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| err(start, "non-UTF-8 atom"))?
                .to_owned();
            Ok(Some(Sexpr::Atom { text, pos: start }))
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

struct Engine {
    system: System,
    outputs: Vec<SmtOutput>,
    /// Last check-sat model, for get-model.
    model: Option<Option<dprle_core::Assignment>>,
    options: SolveOptions,
    /// Shared across the script's check-sats (and, for served scripts,
    /// across every session of the process): fingerprints and memoized
    /// operations computed for the common prefix are cache hits later.
    store: Arc<LangStore>,
    tracer: Tracer,
    /// Aggregated over every check-sat (see `SolveStats::absorb`).
    stats: SolveStats,
}

impl Engine {
    fn command(&mut self, sexpr: &Sexpr) -> Result<(), SmtError> {
        let Sexpr::List { items, pos } = sexpr else {
            return Err(err(sexpr.pos(), "expected a command list"));
        };
        let head = items
            .first()
            .and_then(Sexpr::atom)
            .ok_or_else(|| err(*pos, "empty command"))?;
        match head {
            "set-logic" | "set-info" | "set-option" | "exit" | "echo" => Ok(()),
            "declare-const" => {
                let name = items
                    .get(1)
                    .and_then(Sexpr::atom)
                    .ok_or_else(|| err(*pos, "declare-const needs a name"))?;
                let sort = items.get(2).and_then(Sexpr::atom);
                if sort != Some("String") {
                    return Err(err(*pos, "only the String sort is supported"));
                }
                self.system.var(name);
                Ok(())
            }
            "declare-fun" => {
                let name = items
                    .get(1)
                    .and_then(Sexpr::atom)
                    .ok_or_else(|| err(*pos, "declare-fun needs a name"))?;
                let nullary =
                    matches!(items.get(2), Some(Sexpr::List { items, .. }) if items.is_empty());
                let sort = items.get(3).and_then(Sexpr::atom);
                if !nullary || sort != Some("String") {
                    return Err(err(*pos, "only nullary String functions are supported"));
                }
                self.system.var(name);
                Ok(())
            }
            "assert" => {
                let body = items
                    .get(1)
                    .ok_or_else(|| err(*pos, "assert needs a body"))?;
                self.assert(body)
            }
            "check-sat" => {
                let (solution, stats) = match try_solve_traced(
                    &self.system,
                    &self.options,
                    &self.store,
                    &self.tracer,
                ) {
                    Ok(run) => run,
                    Err(exhausted) => {
                        return Err(SmtError {
                            pos: *pos,
                            message: format!("check-sat aborted: {exhausted}"),
                            exhausted: Some(exhausted),
                        })
                    }
                };
                self.stats.absorb(&stats);
                let sat = solution.is_sat();
                self.model = Some(match solution {
                    Solution::Assignments(mut list) => Some(list.remove(0)),
                    Solution::Unsat => None,
                });
                self.outputs.push(SmtOutput::CheckSat(sat));
                Ok(())
            }
            "get-model" => {
                let Some(model) = &self.model else {
                    return Err(err(*pos, "get-model before check-sat"));
                };
                let Some(assignment) = model else {
                    return Err(err(*pos, "get-model after unsat"));
                };
                let mut lines = Vec::new();
                for v in self.system.var_ids() {
                    let witness = assignment.witness(v).unwrap_or_default();
                    lines.push(format!(
                        "(define-fun {} () String \"{}\")",
                        self.system.var_name(v),
                        escape_smt(&witness)
                    ));
                }
                self.outputs.push(SmtOutput::Model(lines));
                Ok(())
            }
            other => Err(err(*pos, format!("unsupported command `{other}`"))),
        }
    }

    fn assert(&mut self, body: &Sexpr) -> Result<(), SmtError> {
        let Sexpr::List { items, pos } = body else {
            return Err(err(body.pos(), "assert body must be (str.in_re …)"));
        };
        match items.first().and_then(Sexpr::atom) {
            Some("str.in_re") => {
                let term = items
                    .get(1)
                    .ok_or_else(|| err(*pos, "str.in_re needs a term"))?;
                let re = items
                    .get(2)
                    .ok_or_else(|| err(*pos, "str.in_re needs a regex"))?;
                let lhs = self.term(term)?;
                let machine = self.regex(re)?;
                let name = format!("__re{}", self.system.num_consts());
                let rhs = self.system.constant(&name, machine);
                self.system.require(lhs, rhs);
                Ok(())
            }
            Some("=") => {
                // (= term "literal") — equality with a constant string.
                let term = items
                    .get(1)
                    .ok_or_else(|| err(*pos, "= needs two operands"))?;
                let value = match items.get(2) {
                    Some(Sexpr::Str { value, .. }) => value.clone(),
                    _ => return Err(err(*pos, "`=` supports only a string-literal right side")),
                };
                let lhs = self.term(term)?;
                let name = format!("__eq{}", self.system.num_consts());
                let rhs = self.system.constant(&name, Nfa::literal(&value));
                self.system.require(lhs, rhs);
                Ok(())
            }
            _ => Err(err(
                *pos,
                "only (str.in_re …) and (= t \"lit\") assertions are supported",
            )),
        }
    }

    fn term(&mut self, sexpr: &Sexpr) -> Result<Expr, SmtError> {
        match sexpr {
            Sexpr::Str { value, .. } => {
                let name = format!("__lit{}", self.system.num_consts());
                Ok(Expr::Const(
                    self.system.constant(&name, Nfa::literal(value)),
                ))
            }
            Sexpr::Atom { text, pos } => match self.system.var_id(text) {
                Some(v) => Ok(Expr::Var(v)),
                None => Err(err(*pos, format!("undeclared variable `{text}`"))),
            },
            Sexpr::List { items, pos } => {
                if items.first().and_then(Sexpr::atom) != Some("str.++") {
                    return Err(err(*pos, "terms are variables, literals, or (str.++ …)"));
                }
                let mut expr: Option<Expr> = None;
                for item in &items[1..] {
                    let next = self.term(item)?;
                    expr = Some(match expr {
                        None => next,
                        Some(e) => e.concat(next),
                    });
                }
                expr.ok_or_else(|| err(*pos, "str.++ needs at least one operand"))
            }
        }
    }

    fn regex(&mut self, sexpr: &Sexpr) -> Result<Nfa, SmtError> {
        match sexpr {
            Sexpr::Atom { text, pos } => match text.as_str() {
                "re.all" => Ok(Nfa::sigma_star()),
                "re.allchar" => Ok(Nfa::class(ByteClass::FULL)),
                "re.none" => Ok(Nfa::empty_language()),
                other => Err(err(*pos, format!("unknown regex atom `{other}`"))),
            },
            Sexpr::Str { pos, .. } => Err(err(
                *pos,
                "string literals need (str.to_re …) in regex position",
            )),
            Sexpr::List { items, pos } => {
                // Indexed operator: ((_ re.loop n m) r)
                if let Some(Sexpr::List { items: index, .. }) = items.first() {
                    let is_loop = index.first().and_then(Sexpr::atom) == Some("_")
                        && index.get(1).and_then(Sexpr::atom) == Some("re.loop");
                    if is_loop {
                        let n: usize = index
                            .get(2)
                            .and_then(Sexpr::atom)
                            .and_then(|a| a.parse().ok())
                            .ok_or_else(|| err(*pos, "re.loop needs numeric bounds"))?;
                        let m: usize = index
                            .get(3)
                            .and_then(Sexpr::atom)
                            .and_then(|a| a.parse().ok())
                            .ok_or_else(|| err(*pos, "re.loop needs numeric bounds"))?;
                        if m < n {
                            return Err(err(*pos, "re.loop upper bound below lower bound"));
                        }
                        let inner = self.regex(
                            items
                                .get(1)
                                .ok_or_else(|| err(*pos, "re.loop needs a regex"))?,
                        )?;
                        return Ok(ops::repeat_range(&inner, n, m));
                    }
                }
                let head = items
                    .first()
                    .and_then(Sexpr::atom)
                    .ok_or_else(|| err(*pos, "expected a regex operator"))?;
                let args = &items[1..];
                let sub = |engine: &mut Engine, i: usize| -> Result<Nfa, SmtError> {
                    engine.regex(
                        args.get(i)
                            .ok_or_else(|| err(*pos, format!("`{head}` is missing operands")))?,
                    )
                };
                match head {
                    "str.to_re" => match args.first() {
                        Some(Sexpr::Str { value, .. }) => Ok(Nfa::literal(value)),
                        _ => Err(err(*pos, "str.to_re needs a string literal")),
                    },
                    "re.range" => {
                        let lo = match args.first() {
                            Some(Sexpr::Str { value, .. }) if value.len() == 1 => value[0],
                            _ => return Err(err(*pos, "re.range needs single-char strings")),
                        };
                        let hi = match args.get(1) {
                            Some(Sexpr::Str { value, .. }) if value.len() == 1 => value[0],
                            _ => return Err(err(*pos, "re.range needs single-char strings")),
                        };
                        Ok(Nfa::class(ByteClass::range(lo, hi)))
                    }
                    "re.++" => {
                        let mut out = self.regex(
                            args.first()
                                .ok_or_else(|| err(*pos, "re.++ needs operands"))?,
                        )?;
                        for a in &args[1..] {
                            out = ops::concat(&out, &self.regex(a)?).nfa;
                        }
                        self.options
                            .metrics
                            .add(id::CONCAT_STATES, out.num_states() as u64);
                        Ok(out)
                    }
                    "re.union" => {
                        let machines: Vec<Nfa> = args
                            .iter()
                            .map(|a| self.regex(a))
                            .collect::<Result<_, _>>()?;
                        let out = ops::union_all(machines.iter());
                        self.options
                            .metrics
                            .add(id::UNION_STATES, out.num_states() as u64);
                        Ok(out)
                    }
                    "re.inter" => {
                        let machines: Vec<Nfa> = args
                            .iter()
                            .map(|a| self.regex(a))
                            .collect::<Result<_, _>>()?;
                        let out = ops::intersect_all(machines.iter());
                        self.options
                            .metrics
                            .add(id::INTERSECT_PRODUCTS, out.num_states() as u64);
                        Ok(out)
                    }
                    "re.*" => Ok(ops::star(&sub(self, 0)?)),
                    "re.+" => Ok(ops::plus(&sub(self, 0)?)),
                    "re.opt" => Ok(ops::optional(&sub(self, 0)?)),
                    "re.comp" => Ok(complement(&sub(self, 0)?)),
                    "re.diff" => {
                        let a = sub(self, 0)?;
                        let b = sub(self, 1)?;
                        Ok(analysis::difference(&a, &b))
                    }
                    other => Err(err(*pos, format!("unsupported regex operator `{other}`"))),
                }
            }
        }
    }
}

fn escape_smt(bytes: &[u8]) -> String {
    let mut out = String::new();
    for &b in bytes {
        match b {
            b'"' => out.push_str("\"\""),
            0x20..=0x7e => out.push(b as char),
            _ => out.push_str(&format!("\\u{{{b:02x}}}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOTIVATING: &str = r#"
        (set-logic QF_S)
        (declare-const v1 String)
        ; the faulty filter: ends in a digit (no anchor at the front)
        (assert (str.in_re v1 (re.++ re.all (re.+ (re.range "0" "9")))))
        ; the prefixed value must be able to contain a quote
        (assert (str.in_re (str.++ "nid_" v1)
                           (re.++ re.all (str.to_re "'") re.all)))
        (check-sat)
        (get-model)
    "#;

    #[test]
    fn motivating_example_in_smtlib() {
        let out = run_script(MOTIVATING).expect("runs");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], SmtOutput::CheckSat(true));
        match &out[1] {
            SmtOutput::Model(lines) => {
                assert_eq!(lines.len(), 1);
                assert!(
                    lines[0].starts_with("(define-fun v1 () String"),
                    "{lines:?}"
                );
                assert!(lines[0].contains('\''), "witness has the quote: {lines:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_scripts() {
        let out = run_script(
            r#"
            (declare-const x String)
            (assert (str.in_re x (str.to_re "a")))
            (assert (str.in_re x (str.to_re "b")))
            (check-sat)
            "#,
        )
        .expect("runs");
        assert_eq!(out, vec![SmtOutput::CheckSat(false)]);
    }

    #[test]
    fn equality_assertions() {
        let out = run_script(
            r#"
            (declare-const x String)
            (assert (= x "hello"))
            (check-sat)
            (get-model)
            "#,
        )
        .expect("runs");
        match &out[1] {
            SmtOutput::Model(lines) => assert!(lines[0].contains("\"hello\"")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn regex_operators() {
        let out = run_script(
            r#"
            (declare-const x String)
            (assert (str.in_re x (re.union (str.to_re "cat") (str.to_re "dog"))))
            (assert (str.in_re x (re.comp (str.to_re "dog"))))
            (check-sat)
            (get-model)
            "#,
        )
        .expect("runs");
        assert_eq!(out[0], SmtOutput::CheckSat(true));
        match &out[1] {
            SmtOutput::Model(lines) => assert!(lines[0].contains("cat"), "{lines:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_and_inter_and_diff() {
        let out = run_script(
            r#"
            (declare-const x String)
            (assert (str.in_re x ((_ re.loop 2 3) (str.to_re "ab"))))
            (assert (str.in_re x (re.inter (re.* (re.range "a" "b"))
                                           (re.diff re.all (str.to_re "ababab")))))
            (check-sat)
            (get-model)
            "#,
        )
        .expect("runs");
        assert_eq!(out[0], SmtOutput::CheckSat(true));
        match &out[1] {
            SmtOutput::Model(lines) => assert!(lines[0].contains("abab"), "{lines:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declare_fun_and_quoted_strings() {
        let out = run_script(
            r#"
            (declare-fun y () String)
            (assert (= y "say ""hi"""))
            (check-sat)
            (get-model)
            "#,
        )
        .expect("runs");
        match &out[1] {
            SmtOutput::Model(lines) => {
                assert!(lines[0].contains("say \"\"hi\"\""), "{lines:?}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_positioned() {
        assert!(run_script("(declare-const x Int)").is_err());
        assert!(run_script("(assert (str.in_re y re.all))").is_err());
        assert!(run_script("(get-model)").is_err());
        assert!(run_script("(frobnicate)").is_err());
        assert!(run_script("(").is_err());
        assert!(run_script("\"unterminated").is_err());
        let unsat_model = run_script(
            "(declare-const x String)\n(assert (str.in_re x re.none))\n(check-sat)\n(get-model)",
        );
        assert!(unsat_model.is_err(), "model after unsat is an error");
    }

    #[test]
    fn comments_and_ignored_commands() {
        let out = run_script(
            "; header comment\n(set-info :status sat)\n(set-option :produce-models true)\n(check-sat)\n(exit)\n",
        )
        .expect("runs");
        assert_eq!(out, vec![SmtOutput::CheckSat(true)]);
    }

    #[test]
    fn check_sat_reports_budget_exhaustion() {
        let options = SolveOptions {
            budget: dprle_core::Budget {
                max_product_states: Some(1),
                ..Default::default()
            },
            ..SolveOptions::default()
        };
        let e = run_script_with_stats(MOTIVATING, &options, &Tracer::disabled())
            .expect_err("a 1-product-state budget cannot solve the motivating query");
        let exhausted = e.exhausted.as_ref().expect("typed breach attached");
        assert_eq!(exhausted.kind, dprle_core::BudgetKind::ProductStates);
        assert!(e.message.contains("product-states"), "{e}");
        // The same script runs clean without the budget.
        let ok = run_script_with_stats(MOTIVATING, &SolveOptions::default(), &Tracer::disabled())
            .expect("unlimited budget");
        assert_eq!(ok.outputs[0], SmtOutput::CheckSat(true));
    }

    #[test]
    fn lowering_records_into_an_installed_registry() {
        let metrics = dprle_core::Metrics::enabled();
        let options = SolveOptions {
            metrics: metrics.clone(),
            ..SolveOptions::default()
        };
        run_script_with_stats(MOTIVATING, &options, &Tracer::disabled()).expect("runs");
        let snapshot = metrics.snapshot().expect("enabled registry");
        assert!(
            snapshot
                .get("automata.concat.states")
                .expect("re.++ lowered")
                .headline()
                > 0,
            "regex lowering charges the concat counter"
        );
        assert!(
            snapshot
                .get("core.solve.product_states")
                .expect("solved")
                .headline()
                > 0,
            "check-sat recorded solver work"
        );
    }

    #[test]
    fn output_display() {
        assert_eq!(SmtOutput::CheckSat(true).to_string(), "sat");
        assert_eq!(SmtOutput::CheckSat(false).to_string(), "unsat");
        let model = SmtOutput::Model(vec!["(define-fun x () String \"a\")".into()]);
        let text = model.to_string();
        assert!(text.starts_with("(\n"), "{text}");
        assert!(text.ends_with(')'), "{text}");
    }
}
