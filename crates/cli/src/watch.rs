//! `dprle watch`: a live terminal view over a `dprle serve` admin plane.
//!
//! Polls `GET /metrics` on the admin address (`--admin HOST:PORT` on the
//! server side), parses the Prometheus text exposition, and renders one
//! line per sample: request throughput, queue-wait and solve latency
//! quantiles, store hit-rate, and eviction deltas. All quantities except
//! the first sample are per-interval deltas, so the view tracks what the
//! server is doing *now*, not since boot.
//!
//! The parser understands exactly the subset the repo's
//! `MetricsSnapshot::to_prometheus` emits: `# HELP`/`# TYPE` comments,
//! `name value` scalar samples, and the cumulative histogram triple
//! `name_bucket{le="..."}` / `name_sum` / `name_count`. Quantiles are
//! estimated from the log2 cumulative buckets: the reported pNN is the
//! upper bound of the first bucket whose cumulative count reaches the
//! rank, i.e. a conservative (never underestimating) figure.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// One parsed cumulative histogram: `(le, cumulative count)` pairs in
/// exposition order (last is `+Inf`), plus the `_sum` / `_count` samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromHistogram {
    pub buckets: Vec<(f64, u64)>,
    pub sum: u64,
    pub count: u64,
}

/// A parsed `/metrics` exposition: scalar samples (counters and gauges)
/// by name, and histograms by base name.
#[derive(Clone, Debug, Default)]
pub struct PromSnapshot {
    pub scalars: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, PromHistogram>,
}

impl PromSnapshot {
    fn scalar(&self, name: &str) -> u64 {
        self.scalars.get(name).copied().unwrap_or(0)
    }
}

/// Parses Prometheus text exposition into scalars and histograms.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<PromSnapshot, String> {
    let mut snapshot = PromSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fail = |what: &str| format!("line {}: {what}: `{line}`", lineno + 1);
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| fail("expected `name value`"))?;
        let value = value_part
            .parse::<f64>()
            .map_err(|_| fail("unparsable sample value"))?;
        if let Some((base, labels)) = name_part.split_once('{') {
            // The only labeled sample the renderer emits is the
            // histogram bucket's `le`.
            let base = base
                .strip_suffix("_bucket")
                .ok_or_else(|| fail("unexpected labeled sample"))?;
            let le = labels
                .strip_suffix('}')
                .and_then(|l| l.strip_prefix("le=\""))
                .and_then(|l| l.strip_suffix('"'))
                .ok_or_else(|| fail("expected a le=\"...\" label"))?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().map_err(|_| fail("unparsable le bound"))?
            };
            snapshot
                .histograms
                .entry(base.to_owned())
                .or_default()
                .buckets
                .push((le, value as u64));
            continue;
        }
        // `_sum` / `_count` belong to a histogram only when its buckets
        // were already seen (exposition order guarantees this); anything
        // else is a scalar, even if its name happens to end that way.
        if let Some(base) = name_part.strip_suffix("_sum") {
            if let Some(hist) = snapshot.histograms.get_mut(base) {
                hist.sum = value as u64;
                continue;
            }
        }
        if let Some(base) = name_part.strip_suffix("_count") {
            if let Some(hist) = snapshot.histograms.get_mut(base) {
                hist.count = value as u64;
                continue;
            }
        }
        snapshot.scalars.insert(name_part.to_owned(), value as u64);
    }
    Ok(snapshot)
}

/// The quantile estimate from a cumulative-bucket histogram: the upper
/// bound of the first bucket whose cumulative count reaches the rank.
/// Returns `None` on an empty histogram. A result landing in the `+Inf`
/// bucket falls back to the largest finite bound (the estimate is then
/// a lower bound rather than an upper one).
pub fn quantile(hist: &PromHistogram, q: f64) -> Option<f64> {
    let total = hist.buckets.last()?.1;
    if total == 0 {
        return None;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * total as f64).ceil()).max(1.0) as u64;
    let mut last_finite = 0.0;
    for (le, cumulative) in &hist.buckets {
        if le.is_finite() {
            last_finite = *le;
        }
        if *cumulative >= rank {
            return Some(if le.is_finite() { *le } else { last_finite });
        }
    }
    Some(last_finite)
}

/// The per-interval delta of two cumulative histograms (`now - before`),
/// bucket by bucket. Buckets are matched positionally: both sides come
/// from the same registry layout. Saturates on counter resets.
pub fn histogram_delta(before: &PromHistogram, now: &PromHistogram) -> PromHistogram {
    let buckets = now
        .buckets
        .iter()
        .enumerate()
        .map(|(i, (le, cumulative))| {
            let prior = before.buckets.get(i).map_or(0, |(_, c)| *c);
            (*le, cumulative.saturating_sub(prior))
        })
        .collect();
    PromHistogram {
        buckets,
        sum: now.sum.saturating_sub(before.sum),
        count: now.count.saturating_sub(before.count),
    }
}

/// One rendered sample: throughput plus latency quantiles and store
/// deltas, computed from two successive snapshots (or one snapshot and
/// the implicit zero snapshot for the first line).
pub fn render_row(before: &PromSnapshot, now: &PromSnapshot, elapsed: Duration) -> String {
    let delta = |name: &str| now.scalar(name).saturating_sub(before.scalar(name));
    let requests = delta("dprle_serve_requests_sat")
        + delta("dprle_serve_requests_unsat")
        + delta("dprle_serve_requests_resource_exhausted")
        + delta("dprle_serve_requests_parse_error");
    let secs = elapsed.as_secs_f64().max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let rate = requests as f64 / secs;
    let latency = |name: &str| -> String {
        let empty = PromHistogram::default();
        let before = before.histograms.get(name).unwrap_or(&empty);
        let Some(now) = now.histograms.get(name) else {
            return "-/-".to_owned();
        };
        let window = histogram_delta(before, now);
        match (quantile(&window, 0.50), quantile(&window, 0.99)) {
            (Some(p50), Some(p99)) => format!("{p50:.0}/{p99:.0}"),
            _ => "-/-".to_owned(),
        }
    };
    let hits = delta("dprle_core_store_memo_hits");
    let misses = delta("dprle_core_store_memo_misses");
    let hit_rate = if hits + misses == 0 {
        "-".to_owned()
    } else {
        #[allow(clippy::cast_precision_loss)]
        let pct = 100.0 * hits as f64 / (hits + misses) as f64;
        format!("{pct:.1}%")
    };
    format!(
        "{rate:8.1} req/s  queue-wait p50/p99 {:>11} µs  solve p50/p99 {:>13} µs  hit-rate {hit_rate:>6}  evictions +{}",
        latency("dprle_serve_request_queue_wait_us"),
        latency("dprle_serve_request_solve_us"),
        delta("dprle_core_store_evictions"),
    )
}

/// Fetches `/metrics` from the admin plane with a raw HTTP/1.1 GET.
fn fetch_metrics(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("{addr}: {e}"))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{addr}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("{addr}: {status}"));
    }
    Ok(body.to_owned())
}

/// The `dprle watch` entry point. Renders one line per poll; the first
/// line covers the server's lifetime so far, later lines the interval
/// since the previous poll.
pub fn watch_main(argv: &[String], usage: &str) -> ExitCode {
    let mut interval_ms: u64 = 1000;
    let mut count: Option<u64> = None;
    let mut addr: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--interval-ms" => {
                i += 1;
                let Some(n) = argv
                    .get(i)
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                else {
                    eprintln!("--interval-ms needs a positive integer\n{usage}");
                    return ExitCode::from(2);
                };
                interval_ms = n;
            }
            "--count" => {
                i += 1;
                let Some(n) = argv
                    .get(i)
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                else {
                    eprintln!("--count needs a positive integer\n{usage}");
                    return ExitCode::from(2);
                };
                count = Some(n);
            }
            "-h" | "--help" => {
                eprintln!("{usage}");
                return ExitCode::from(2);
            }
            other if other.starts_with('-') => {
                eprintln!("unknown watch option `{other}`\n{usage}");
                return ExitCode::from(2);
            }
            other => {
                if addr.is_some() {
                    eprintln!("multiple addresses\n{usage}");
                    return ExitCode::from(2);
                }
                addr = Some(other.to_owned());
            }
        }
        i += 1;
    }
    let Some(addr) = addr else {
        eprintln!("dprle watch needs the admin plane's HOST:PORT\n{usage}");
        return ExitCode::from(2);
    };
    println!("watching {addr} every {interval_ms} ms (first line is since server start)");
    let mut before = PromSnapshot::default();
    let mut before_at: Option<Instant> = None;
    let mut samples = 0u64;
    loop {
        let body = match fetch_metrics(&addr) {
            Ok(body) => body,
            Err(e) => {
                eprintln!("dprle: watch: {e}");
                return ExitCode::from(2);
            }
        };
        let now_at = Instant::now();
        let now = match parse_prometheus(&body) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("dprle: watch: {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        // The first interval has no local baseline timestamp; use the
        // poll interval as a neutral denominator for the rate.
        let elapsed = before_at.map_or(Duration::from_millis(interval_ms), |t| now_at - t);
        println!("{}", render_row(&before, &now, elapsed));
        before = now;
        before_at = Some(now_at);
        samples += 1;
        if count.is_some_and(|n| samples >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_core::metrics::id;
    use dprle_core::Metrics;

    #[test]
    fn parses_the_repos_own_prometheus_exposition() {
        let metrics = Metrics::enabled();
        metrics.add(id::SERVE_SAT, 3);
        metrics.add(id::SERVE_UNSAT, 1);
        metrics.observe(id::SERVE_QUEUE_WAIT_US, 7);
        metrics.observe(id::SERVE_QUEUE_WAIT_US, 100);
        let text = metrics.snapshot().expect("enabled").to_prometheus();
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed.scalar("dprle_serve_requests_sat"), 3);
        assert_eq!(parsed.scalar("dprle_serve_requests_unsat"), 1);
        let hist = parsed
            .histograms
            .get("dprle_serve_request_queue_wait_us")
            .expect("histogram");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 107);
        assert_eq!(
            hist.buckets.last().expect("buckets").1,
            2,
            "cumulative total"
        );
        assert!(hist.buckets.last().expect("buckets").0.is_infinite());
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets() {
        // 10 samples <= 15, 89 more <= 255, 1 more unbounded.
        let hist = PromHistogram {
            buckets: vec![(15.0, 10), (255.0, 99), (f64::INFINITY, 100)],
            sum: 0,
            count: 100,
        };
        assert_eq!(quantile(&hist, 0.05), Some(15.0));
        assert_eq!(quantile(&hist, 0.50), Some(255.0));
        assert_eq!(quantile(&hist, 0.99), Some(255.0));
        // p100 lands in +Inf; the estimate falls back to the largest
        // finite bound.
        assert_eq!(quantile(&hist, 1.0), Some(255.0));
        assert_eq!(quantile(&PromHistogram::default(), 0.5), None);
    }

    #[test]
    fn histogram_deltas_subtract_bucket_by_bucket() {
        let before = PromHistogram {
            buckets: vec![(15.0, 4), (f64::INFINITY, 5)],
            sum: 50,
            count: 5,
        };
        let now = PromHistogram {
            buckets: vec![(15.0, 10), (f64::INFINITY, 12)],
            sum: 140,
            count: 12,
        };
        let window = histogram_delta(&before, &now);
        assert_eq!(window.buckets, vec![(15.0, 6), (f64::INFINITY, 7)]);
        assert_eq!(window.sum, 90);
        assert_eq!(window.count, 7);
    }

    #[test]
    fn rendered_rows_report_interval_deltas() {
        let metrics = Metrics::enabled();
        metrics.add(id::SERVE_SAT, 5);
        metrics.add(id::STORE_MEMO_HITS, 9);
        metrics.add(id::STORE_MEMO_MISSES, 1);
        metrics.observe(id::SERVE_QUEUE_WAIT_US, 3);
        metrics.observe(id::SERVE_SOLVE_US, 900);
        let before = PromSnapshot::default();
        let now = parse_prometheus(&metrics.snapshot().expect("enabled").to_prometheus())
            .expect("parses");
        let row = render_row(&before, &now, Duration::from_secs(1));
        assert!(row.contains("5.0 req/s"), "throughput: {row}");
        assert!(row.contains("hit-rate  90.0%"), "hit rate: {row}");
        assert!(row.contains("evictions +0"), "evictions: {row}");
        // A second, idle interval reports zero throughput.
        let idle = render_row(&now, &now, Duration::from_secs(1));
        assert!(idle.contains("0.0 req/s"), "idle: {idle}");
        assert!(idle.contains("-/-"), "no samples in the window: {idle}");
    }
}
