//! Source-level SQL-injection analyzer: the paper's §4 prototype as a
//! command-line tool.
//!
//! ```text
//! dprle-analyze [OPTIONS] FILE.php...
//!
//! Options:
//!   --policy quote|stacked|xss   policy (default: quote; `xss` switches
//!                            to echo sinks and the script-tag language)
//!   --unroll N               while-loop unrolling bound (default: 3)
//!   --show-query             print the symbolic query for each finding
//!   --slice                  print the program slice for each finding
//!   --alternatives N         print up to N exploit values per input
//!   -h, --help               this message
//! ```
//!
//! For each input file (in the PHP fragment documented in `dprle_lang::php`)
//! this explores all paths, solves each sink's constraint system, and prints
//! exploit inputs — or reports the file safe under the policy.

use dprle_core::SolveOptions;
use dprle_lang::symex::{SinkKind, SymexOptions};
use dprle_lang::{analyze_sinks, parse_php, Policy};
use std::process::ExitCode;

const USAGE: &str = "usage: dprle-analyze [--policy quote|stacked|xss] [--unroll N] \
[--show-query] [--slice] [--alternatives N] FILE.php...";

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut policy = Policy::sql_quote();
    let mut sink_kind: Option<SinkKind> = None;
    let mut symex = SymexOptions::default();
    let mut show_query = false;
    let mut show_slice = false;
    let mut alternatives = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => match args.next().as_deref() {
                Some("quote") => policy = Policy::sql_quote(),
                Some("stacked") => policy = Policy::sql_stacked_query(),
                Some("xss") => {
                    policy = Policy::xss_script_tag();
                    sink_kind = Some(SinkKind::Echo);
                    symex.track_echo = true;
                }
                other => {
                    eprintln!("unknown policy {other:?}\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--unroll" => {
                symex.max_loop_unroll = match args.next().and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--unroll needs a number\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--show-query" => show_query = true,
            "--slice" => show_slice = true,
            "--alternatives" => {
                alternatives = match args.next().and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("--alternatives needs a number\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut any_vulnerable = false;
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dprle-analyze: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let name = file.trim_end_matches(".php");
        let program = match parse_php(name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("dprle-analyze: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = match analyze_sinks(
            &program,
            &policy,
            &symex,
            &SolveOptions::default(),
            sink_kind,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dprle-analyze: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        if report.findings.is_empty() {
            println!(
                "{file}: SAFE under policy `{}` ({} sink(s) checked)",
                policy.name(),
                report.total_sinks
            );
            continue;
        }
        any_vulnerable = true;
        for finding in &report.findings {
            println!("{file}: VULNERABLE (sink #{})", finding.sink_index);
            if show_query {
                println!("  query: {}", finding.query);
            }
            if finding.witnesses.is_empty() {
                println!("  the query is unsafe for every input");
            }
            for (input, value) in &finding.witnesses {
                println!("  {input} = {:?}", String::from_utf8_lossy(value));
                if alternatives > 1 {
                    if let Some(lang) = finding.languages.get(input) {
                        for (i, alt) in dprle_automata::analysis::members(lang)
                            .take(alternatives)
                            .enumerate()
                            .skip(1)
                        {
                            println!("    alternative {}: {:?}", i, String::from_utf8_lossy(&alt));
                        }
                    }
                }
            }
            if show_slice {
                if let Some(slice) = dprle_lang::slice_for_sink(&program, finding.sink_index) {
                    println!("  slice:");
                    for line in slice.to_text().lines() {
                        println!("    {line}");
                    }
                }
            }
        }
    }
    if any_vulnerable {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
