//! Fuzzing the front end with random programs: the printer/parser
//! round-trip, the CFG builder, symbolic execution, and the interpreter
//! must all be total on well-formed inputs; the analysis must stay sound
//! (exploits replay) whenever it reports a finding.

use dprle_core::SolveOptions;
use dprle_corpus::{random_program, RandomProgramConfig};
use dprle_lang::symex::SymexOptions;
use dprle_lang::{analyze, parse_php, print_php, run_with_oracle, Cfg, Policy};
use std::collections::HashMap;

const SEEDS: u64 = 120;

#[test]
fn print_parse_roundtrip_on_random_programs() {
    let config = RandomProgramConfig::default();
    for seed in 0..SEEDS {
        let program = random_program(seed, &config);
        let printed = print_php(&program);
        let reparsed = parse_php(&program.name, &printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        assert_eq!(program, reparsed, "seed {seed}\n{printed}");
    }
}

#[test]
fn cfg_and_symex_are_total_on_random_programs() {
    let config = RandomProgramConfig::default();
    let symex = SymexOptions {
        max_paths: 100_000,
        max_loop_unroll: 2,
        ..Default::default()
    };
    for seed in 0..SEEDS {
        let program = random_program(seed, &config);
        let cfg = Cfg::build(&program);
        assert!(cfg.num_blocks() >= 2, "seed {seed}");
        // Exploration must terminate without panicking; the path limit is
        // an acceptable (reported) outcome.
        let _ = dprle_lang::explore(&program, &symex);
    }
}

#[test]
fn interpreter_is_total_with_an_oracle() {
    let config = RandomProgramConfig::default();
    for seed in 0..SEEDS {
        let program = random_program(seed, &config);
        // Alternate opaque decisions deterministically; loops that spin on
        // an opaque condition terminate because the oracle flips.
        let mut flip = false;
        let mut oracle = |_: &str| {
            flip = !flip;
            Some(flip)
        };
        let inputs: HashMap<String, Vec<u8>> = [
            ("in0".to_string(), b"abc".to_vec()),
            ("in1".to_string(), b"'".to_vec()),
            ("in2".to_string(), Vec::new()),
        ]
        .into_iter()
        .collect();
        // Totality means no panic/hang: normal completion and the
        // iteration-cap error (for genuinely divergent loops) are both
        // acceptable outcomes.
        match run_with_oracle(&program, &inputs, &mut oracle) {
            Ok(_) | Err(dprle_lang::InterpError::LoopBound) => {}
            Err(e) => panic!("seed {seed}: {e}"),
        }
    }
}

#[test]
fn findings_on_random_programs_replay() {
    // Soundness sweep: for every finding on opaque-free random programs,
    // the witnesses drive a real execution into an unsafe query.
    let config = RandomProgramConfig {
        max_depth: 2,
        ..Default::default()
    };
    let symex = SymexOptions {
        max_paths: 50_000,
        max_loop_unroll: 2,
        ..Default::default()
    };
    let mut findings_seen = 0usize;
    for seed in 0..SEEDS {
        let program = random_program(seed, &config);
        // Skip programs with opaque conditions: their decisions are not
        // replayable from a finding alone.
        if print_php(&program).contains("unknown(") {
            continue;
        }
        let Ok(report) = analyze(
            &program,
            &Policy::sql_quote(),
            &symex,
            &SolveOptions::default(),
        ) else {
            continue; // mixed mapped use or path limit: fine for fuzzing
        };
        for finding in &report.findings {
            if finding.witnesses.is_empty() {
                continue; // concrete unsafe query: nothing to replay
            }
            let inputs: HashMap<String, Vec<u8>> = finding
                .witnesses
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let Ok(result) = dprle_lang::run(&program, &inputs) else {
                continue;
            };
            assert!(
                result.any_query_contains(b'\''),
                "seed {seed}: finding did not replay\n{}",
                print_php(&program)
            );
            findings_seen += 1;
        }
    }
    assert!(
        findings_seen > 5,
        "fuzzing should exercise real findings: {findings_seen}"
    );
}
