//! # dprle-corpus
//!
//! Synthetic evaluation corpus mirroring the PLDI 2009 data set.
//!
//! The paper evaluates on three PHP applications (Figure 11) with 17
//! SQL-injection defect reports (Figure 12). Those applications are not
//! redistributable, so this crate synthesizes IR programs whose *measured*
//! statistics — basic-block count `|FG|`, constraint count `|C|`, file and
//! LOC counts, and the presence of one pathological large-constant case —
//! match the published rows. See `DESIGN.md` ("substitutions") at the
//! repository root for the full rationale.
//!
//! * [`spec`] — the published Figure 11/12 numbers as data.
//! * [`generate`] — deterministic program synthesis for each row.
//! * [`scaling`] — parametric workloads for the §3.5 complexity benches
//!   and random systems for solver fuzzing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod scaling;
pub mod spec;

pub use generate::{
    fig12_programs, generate_app, generate_corpus, random_program, safe_program,
    vulnerable_program, GeneratedApp, RandomProgramConfig,
};
pub use spec::{rows_for_app, AppSpec, VulnSpec, FIG11_APPS, FIG12_ROWS};
