//! Synthetic program generation matching the published shape statistics.
//!
//! The original PHP applications are not redistributable, so each Figure 12
//! row is synthesized as an IR program whose *measured* statistics match
//! the published ones:
//!
//! * `|FG|` — padded to the published basic-block count with concretely
//!   pruned guard blocks (they shape the CFG but cost the solver nothing,
//!   like the bulk of a real PHP file that is irrelevant to one defect);
//! * `|C|` — the vulnerable path carries exactly `|C| − 1` symbolic
//!   conditions (the policy constraint is the final one), spread over the
//!   defect input and auxiliary request parameters;
//! * the `secure` row embeds multi-kilobyte string literals in the query,
//!   reproducing the paper's explanation of its 577 s outlier ("large
//!   string constants are explicitly represented and tracked through state
//!   machine transformations").
//!
//! Every vulnerable program follows the paper's Figure 1 idiom: the defect
//! input passes the *faulty* `/[\d]+$/` filter (missing `^`), is prefixed
//! with a literal, and reaches a `query()` sink.

use crate::spec::{AppSpec, VulnSpec, FIG11_APPS, FIG12_ROWS};
use dprle_lang::{Cfg, Cond, Program, Stmt, StringExpr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic seed salt so corpus generation is reproducible.
const SEED_SALT: u64 = 0x5eed_0001;

/// Generates the vulnerable program for one Figure 12 row.
pub fn vulnerable_program(spec: &VulnSpec) -> Program {
    let mut rng = StdRng::seed_from_u64(SEED_SALT ^ hash_name(spec.name));
    let mut p = Program::new(spec.name);
    let main_input = format!("posted_{}", spec.name);

    // The defect input and its faulty filter (Figure 1 lines 1–5).
    p.stmts.push(Stmt::Assign {
        var: "id".to_owned(),
        value: StringExpr::Input(main_input.clone()),
    });
    p.stmts.push(Stmt::If {
        cond: Cond::PregMatch {
            pattern: "[\\d]+$".to_owned(),
            subject: StringExpr::var("id"),
        }
        .negate(),
        then: vec![
            Stmt::Echo {
                expr: StringExpr::lit("Invalid ID."),
            },
            Stmt::Exit,
        ],
        els: vec![],
    });

    // Auxiliary request parameters carrying the remaining |C| − 2 symbolic
    // conditions (filter + policy account for the other two).
    let aux_conditions = spec.c.saturating_sub(2);
    let num_aux = aux_conditions.clamp(1, 8).min(aux_conditions.max(1));
    for j in 0..aux_conditions {
        let aux = format!("aux_{}", j % num_aux.max(1));
        p.stmts.push(aux_guard(j, &aux));
    }

    // The query sink (Figure 1 lines 6–8). The `secure` row drags large
    // string constants through the constraint system.
    let template_len = if spec.heavy {
        1600
    } else {
        16 + rng.gen_range(0..32)
    };
    let template = sql_template(spec.name, template_len, &mut rng);
    let mut query = StringExpr::Literal(template)
        .concat(StringExpr::lit("nid_"))
        .concat(StringExpr::var("id"));
    if spec.heavy {
        // A second large constant after the tainted value, so the product
        // machines stay large on both sides of the bridge.
        query = query
            .concat(StringExpr::Literal(sql_template("tail", 1200, &mut rng)))
            .concat(StringExpr::lit(" ORDER BY 1"));
    }
    p.stmts.push(Stmt::Query { expr: query });

    pad_to_blocks(&mut p, spec.fg);
    p
}

/// One auxiliary condition: alternates between filters that *held* and
/// guards that *failed* (yielding complement constraints), all jointly
/// satisfiable (the single byte `a` passes every combination).
fn aux_guard(index: usize, input: &str) -> Stmt {
    match index % 3 {
        0 => Stmt::If {
            // Held filter: input ends with a lowercase letter.
            cond: Cond::PregMatch {
                pattern: "[a-z]+$".to_owned(),
                subject: StringExpr::input(input),
            }
            .negate(),
            then: vec![Stmt::Exit],
            els: vec![],
        },
        1 => Stmt::If {
            // Failed guard: input must not start with "zz".
            cond: Cond::PregMatch {
                pattern: "^zz".to_owned(),
                subject: StringExpr::input(input),
            },
            then: vec![
                Stmt::Echo {
                    expr: StringExpr::lit("blocked"),
                },
                Stmt::Exit,
            ],
            els: vec![],
        },
        _ => Stmt::If {
            // Held filter: input contains `a` or `c`.
            cond: Cond::PregMatch {
                pattern: "[ac]".to_owned(),
                subject: StringExpr::input(input),
            }
            .negate(),
            then: vec![Stmt::Exit],
            els: vec![],
        },
    }
}

/// A deterministic pseudo-SQL template literal of roughly `len` bytes,
/// free of quotes (the exploit must be the only quote source).
fn sql_template(name: &str, len: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = format!("SELECT * FROM {name} WHERE ").into_bytes();
    let words: [&[u8]; 6] = [b"col", b"val", b"AND ", b"x=", b"1 ", b"key_"];
    while out.len() < len {
        out.extend_from_slice(words[rng.gen_range(0..words.len())]);
    }
    out.push(b'=');
    out
}

/// Appends concretely pruned guard blocks until the CFG reaches at least
/// `target` basic blocks. Each guard brands a constant, tests it with an
/// always-true concrete match, and exits on the (infeasible) failure arm —
/// adding CFG blocks without adding symbolic paths.
fn pad_to_blocks(p: &mut Program, target: usize) {
    let mut i = 0usize;
    while Cfg::build(p).num_blocks() < target {
        let var = format!("__pad{i}");
        let sink = p.stmts.pop().expect("program has a sink statement");
        p.stmts.push(Stmt::Assign {
            var: var.clone(),
            value: StringExpr::lit("ok"),
        });
        p.stmts.push(Stmt::If {
            cond: Cond::PregMatch {
                pattern: "^ok$".to_owned(),
                subject: StringExpr::Var(var),
            }
            .negate(),
            then: vec![
                Stmt::Echo {
                    expr: StringExpr::lit("unreachable"),
                },
                Stmt::Exit,
            ],
            els: vec![],
        });
        p.stmts.push(sink);
        i += 1;
    }
}

/// A benign filler file: correctly anchored filtering before its query, so
/// the analysis reports no finding.
pub fn safe_program(name: &str, statements: usize) -> Program {
    let mut p = Program::new(name);
    p.stmts.push(Stmt::Assign {
        var: "id".to_owned(),
        value: StringExpr::input("page_id"),
    });
    p.stmts.push(Stmt::If {
        cond: Cond::PregMatch {
            pattern: "^[\\d]+$".to_owned(), // properly anchored
            subject: StringExpr::var("id"),
        }
        .negate(),
        then: vec![Stmt::Exit],
        els: vec![],
    });
    for i in 0..statements.saturating_sub(4) {
        p.stmts.push(Stmt::Echo {
            expr: StringExpr::Literal(format!("line {i}").into_bytes()),
        });
    }
    p.stmts.push(Stmt::Query {
        expr: StringExpr::lit("SELECT * FROM pages WHERE id=").concat(StringExpr::var("id")),
    });
    p
}

/// One generated application: the Figure 11 spec plus its synthesized
/// files.
#[derive(Clone, Debug)]
pub struct GeneratedApp {
    /// The published Figure 11 row this app mirrors.
    pub spec: AppSpec,
    /// The synthesized files: vulnerable ones first, then safe fillers.
    pub files: Vec<Program>,
}

impl GeneratedApp {
    /// Total statement count across files (the LOC analog reported by the
    /// Figure 11 table binary).
    pub fn total_statements(&self) -> usize {
        self.files.iter().map(Program::num_statements).sum()
    }

    /// Writes every file as PHP-like source under `dir` (one `.php` file
    /// per program), returning the written paths. The emitted sources
    /// parse back to the same programs (`dprle_lang::parse_php`), so the
    /// corpus can be consumed by the source-level `dprle-analyze` tool.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_sources(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut out = Vec::with_capacity(self.files.len());
        for file in &self.files {
            let path = dir.join(format!("{}.php", file.name));
            std::fs::write(&path, dprle_lang::print_php(file))?;
            out.push(path);
        }
        Ok(out)
    }
}

/// Generates one application from its Figure 11 spec: one vulnerable file
/// per Figure 12 row of that app, plus safe filler files sized so the
/// statement total approximates the published LOC.
pub fn generate_app(spec: &AppSpec) -> GeneratedApp {
    let mut files: Vec<Program> = crate::spec::rows_for_app(spec.name)
        .into_iter()
        .map(vulnerable_program)
        .collect();
    let vulnerable_statements: usize = files.iter().map(Program::num_statements).sum();
    let fillers = spec.files.saturating_sub(files.len());
    if fillers > 0 {
        let remaining = spec.loc.saturating_sub(vulnerable_statements);
        let per_file = remaining.checked_div(fillers).unwrap_or(0).max(5);
        for i in 0..fillers {
            files.push(safe_program(&format!("{}_page{}", spec.name, i), per_file));
        }
    }
    GeneratedApp { spec: *spec, files }
}

/// Generates the full three-application corpus.
pub fn generate_corpus() -> Vec<GeneratedApp> {
    FIG11_APPS.iter().map(generate_app).collect()
}

/// All 17 vulnerable programs in Figure 12 order.
pub fn fig12_programs() -> Vec<(&'static VulnSpec, Program)> {
    FIG12_ROWS
        .iter()
        .map(|spec| (spec, vulnerable_program(spec)))
        .collect()
}

/// Parameters for random program generation (fuzzing the front end).
#[derive(Clone, Debug)]
pub struct RandomProgramConfig {
    /// Maximum statements per block.
    pub max_block_len: usize,
    /// Maximum branch/loop nesting depth.
    pub max_depth: usize,
    /// Number of distinct input parameters to draw from.
    pub num_inputs: usize,
}

impl Default for RandomProgramConfig {
    fn default() -> Self {
        RandomProgramConfig {
            max_block_len: 6,
            max_depth: 3,
            num_inputs: 3,
        }
    }
}

/// Generates a random (but always well-formed) program, deterministic per
/// seed. Used to fuzz the printer/parser round-trip, symbolic execution,
/// and the interpreter.
pub fn random_program(seed: u64, config: &RandomProgramConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf022);
    let stmts = random_block(&mut rng, config, config.max_depth);
    Program {
        name: format!("fuzz_{seed}"),
        stmts,
    }
}

fn random_block(rng: &mut StdRng, config: &RandomProgramConfig, depth: usize) -> Vec<Stmt> {
    let n = rng.gen_range(1..=config.max_block_len);
    (0..n).map(|_| random_stmt(rng, config, depth)).collect()
}

fn random_stmt(rng: &mut StdRng, config: &RandomProgramConfig, depth: usize) -> Stmt {
    let choice = if depth == 0 {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..6)
    };
    match choice {
        0 => Stmt::Assign {
            var: format!("v{}", rng.gen_range(0..4)),
            value: random_expr(rng, config, 2),
        },
        1 => Stmt::Echo {
            expr: random_expr(rng, config, 2),
        },
        2 => Stmt::Query {
            expr: random_expr(rng, config, 2),
        },
        3 => Stmt::Exit,
        4 => Stmt::If {
            cond: random_cond(rng, config),
            then: random_block(rng, config, depth - 1),
            els: if rng.gen_bool(0.5) {
                Vec::new()
            } else {
                random_block(rng, config, depth - 1)
            },
        },
        _ => Stmt::While {
            cond: random_cond(rng, config),
            body: random_block(rng, config, depth - 1),
        },
    }
}

fn random_expr(rng: &mut StdRng, config: &RandomProgramConfig, depth: usize) -> StringExpr {
    let choice = if depth == 0 {
        rng.gen_range(0..3)
    } else {
        rng.gen_range(0..6)
    };
    match choice {
        0 => StringExpr::Literal(random_literal(rng)),
        1 => StringExpr::Input(format!("in{}", rng.gen_range(0..config.num_inputs))),
        2 => StringExpr::Var(format!("v{}", rng.gen_range(0..4))),
        3 => random_expr(rng, config, depth - 1).concat(random_expr(rng, config, depth - 1)),
        4 => StringExpr::Lower(Box::new(random_expr(rng, config, depth - 1))),
        _ => StringExpr::Upper(Box::new(random_expr(rng, config, depth - 1))),
    }
}

fn random_cond(rng: &mut StdRng, config: &RandomProgramConfig) -> Cond {
    let base = match rng.gen_range(0..3) {
        0 => Cond::PregMatch {
            pattern: ["^[a-z]+$", "[0-9]", "x|y", "a{1,3}b"][rng.gen_range(0..4)].to_owned(),
            subject: random_expr(rng, config, 1),
        },
        1 => Cond::EqualsLiteral {
            subject: random_expr(rng, config, 1),
            literal: random_literal(rng),
        },
        _ => Cond::Opaque(format!("p{}", rng.gen_range(0..3))),
    };
    if rng.gen_bool(0.4) {
        base.negate()
    } else {
        base
    }
}

fn random_literal(rng: &mut StdRng) -> Vec<u8> {
    // A spread of byte shapes: printable, quotes, escapes, high bytes.
    let pool: [&[u8]; 7] = [
        b"abc",
        b"'",
        b"\\",
        b"\"q\"",
        b"\n\t",
        b"\x00\xff",
        b"SELECT *",
    ];
    pool[rng.gen_range(0..pool.len())].to_vec()
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough for seeding.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_core::SolveOptions;
    use dprle_lang::symex::SymexOptions;
    use dprle_lang::{analyze, Policy};

    #[test]
    fn fg_targets_are_met() {
        for spec in FIG12_ROWS.iter().filter(|s| !s.heavy).take(3) {
            let p = vulnerable_program(spec);
            let blocks = Cfg::build(&p).num_blocks();
            assert!(
                blocks >= spec.fg && blocks <= spec.fg + 2,
                "{}: |FG| {} vs target {}",
                spec.name,
                blocks,
                spec.fg
            );
        }
    }

    #[test]
    fn constraint_counts_are_met() {
        let spec = &FIG12_ROWS[1]; // utopia/login, |C| = 16
        let p = vulnerable_program(spec);
        let reaches = dprle_lang::explore(&p, &SymexOptions::default()).expect("explores");
        assert_eq!(reaches.len(), 1, "one vulnerable path");
        let (sys, _) = dprle_lang::to_system(&reaches[0], &Policy::sql_quote());
        assert_eq!(sys.num_constraints(), spec.c, "{}", spec.name);
    }

    #[test]
    fn generated_vulnerability_is_exploitable() {
        let spec = &FIG12_ROWS[6]; // warp/ax_help, smallest |C|
        let p = vulnerable_program(spec);
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let main = format!("posted_{}", spec.name);
        let exploit = report.findings[0].witnesses.get(&main).expect("witness");
        assert!(exploit.contains(&b'\''));
        assert!(exploit.last().expect("nonempty").is_ascii_digit());
    }

    #[test]
    fn safe_program_has_no_findings() {
        let p = safe_program("filler", 20);
        let report = analyze(
            &p,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .expect("analyzes");
        assert!(report.findings.is_empty());
        assert_eq!(report.safe_sinks, 1);
    }

    #[test]
    fn apps_match_fig11_shape() {
        let eve = generate_app(&FIG11_APPS[0]);
        assert_eq!(eve.files.len(), 8);
        // LOC analog within 25% of the published figure.
        let loc = eve.total_statements() as f64;
        assert!(
            (loc - 905.0).abs() / 905.0 < 0.25,
            "eve statement count {loc} vs published 905"
        );
    }

    #[test]
    fn emitted_sources_reparse_to_the_same_programs() {
        for spec in [&FIG12_ROWS[0], &FIG12_ROWS[6]] {
            let p = vulnerable_program(spec);
            let source = dprle_lang::print_php(&p);
            let reparsed = dprle_lang::parse_php(&p.name, &source).expect("emitted source parses");
            assert_eq!(p, reparsed, "{}", spec.name);
        }
        let safe = safe_program("filler", 12);
        let reparsed =
            dprle_lang::parse_php("filler", &dprle_lang::print_php(&safe)).expect("parses");
        assert_eq!(safe, reparsed);
    }

    #[test]
    fn write_sources_creates_php_files() {
        let dir = std::env::temp_dir().join("dprle_corpus_test_eve");
        let _ = std::fs::remove_dir_all(&dir);
        let app = generate_app(&FIG11_APPS[0]);
        let paths = app.write_sources(&dir).expect("writes");
        assert_eq!(paths.len(), app.files.len());
        let text = std::fs::read_to_string(&paths[0]).expect("readable");
        assert!(text.starts_with("<?php"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = vulnerable_program(&FIG12_ROWS[0]);
        let b = vulnerable_program(&FIG12_ROWS[0]);
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_row_carries_large_constants() {
        let spec = FIG12_ROWS.iter().find(|s| s.heavy).expect("secure row");
        let p = vulnerable_program(spec);
        // Find the query literal size.
        fn max_literal(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Query { expr } | Stmt::Echo { expr } => expr_max_literal(expr),
                    Stmt::Assign { value, .. } => expr_max_literal(value),
                    Stmt::If { then, els, .. } => max_literal(then).max(max_literal(els)),
                    Stmt::While { body, .. } => max_literal(body),
                    Stmt::Exit => 0,
                })
                .max()
                .unwrap_or(0)
        }
        fn expr_max_literal(e: &StringExpr) -> usize {
            match e {
                StringExpr::Literal(bytes) => bytes.len(),
                StringExpr::Concat(parts) => parts.iter().map(expr_max_literal).max().unwrap_or(0),
                _ => 0,
            }
        }
        assert!(max_literal(&p.stmts) >= 1500);
    }
}
