//! Parametric workloads for the §3.5 complexity study and for fuzzing.
//!
//! The paper analyzes the concat-intersect procedure's cost in terms of an
//! upper bound `Q` on input machine size: the intersection machine has
//! O(Q²) states, enumerating all solutions visits O(Q³), and nesting
//! (a second CI call consuming the first's output) raises the bound to
//! O(Q⁵). These generators produce families of instances whose sizes scale
//! with `Q` so the benchmark harness can measure the growth curves.

use dprle_automata::generate::{random_nonempty_nfa, RandomNfaConfig};
use dprle_automata::{ops, Nfa};
use dprle_core::{Expr, System};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CI instance `(c₁, c₂, c₃)` whose three machines each have Θ(q)
/// states, with a guaranteed-nonempty `(c₁·c₂) ∩ c₃`.
///
/// `c₁ = a{0,q}`, `c₂ = b{0,q}`, `c₃ = a{0,q}·b{0,q}` — every prefix split
/// is a potential solution, so the bridge-edge count also grows with `q`.
pub fn ci_instance(q: usize) -> (Nfa, Nfa, Nfa) {
    use dprle_automata::ByteClass;
    let a = ByteClass::singleton(b'a');
    let b = ByteClass::singleton(b'b');
    let c1 = Nfa::class_repeat(a, 0, q);
    let c2 = Nfa::class_repeat(b, 0, q);
    let c3 = ops::concat(&Nfa::class_repeat(a, 0, q), &Nfa::class_repeat(b, 0, q)).nfa;
    (c1, c2, c3)
}

/// A CI instance with dense constraint machines: `c₃` is a nontrivial
/// pattern over both letters, so the product does real filtering work.
pub fn ci_instance_dense(q: usize) -> (Nfa, Nfa, Nfa) {
    use dprle_automata::ByteClass;
    let ab = ByteClass::from_bytes([b'a', b'b']);
    let c1 = Nfa::class_repeat(ab, 0, q);
    let c2 = Nfa::class_repeat(ab, 0, q);
    // c3: strings over {a,b} whose length is between q/2 and q, followed by
    // anything ending in 'b'.
    let tail = ops::concat(
        &ops::star(&Nfa::class(ab)),
        &Nfa::class(ByteClass::singleton(b'b')),
    )
    .nfa;
    let c3 = ops::concat(&Nfa::class_repeat(ab, q / 2, q), &tail).nfa;
    (c1, c2, c3)
}

/// A CI instance that *attains* the paper's O(Q²) product bound: the
/// concatenation machine tracks string position (Θ(q) states) while `c₃`
/// tracks the count of `a`s modulo `q` (Θ(q) states, with `b` self-loops).
/// Position and count are independent, so Θ(q²) product pairs are
/// reachable — the worst case of the §3.5 analysis.
pub fn ci_instance_modular(q: usize) -> (Nfa, Nfa, Nfa) {
    use dprle_automata::ByteClass;
    let q = q.max(2);
    let ab = ByteClass::from_bytes([b'a', b'b']);
    let c1 = Nfa::class_repeat(ab, 0, q);
    let c2 = Nfa::class_repeat(ab, 0, q);
    // c3: (#a mod q) == 0 — a cycle of q states on 'a', self-loops on 'b'.
    let mut c3 = Nfa::new();
    let mut ring = vec![c3.start()];
    for _ in 1..q {
        ring.push(c3.add_state());
    }
    for i in 0..q {
        c3.add_edge(ring[i], ByteClass::singleton(b'a'), ring[(i + 1) % q]);
        c3.add_edge(ring[i], ByteClass::singleton(b'b'), ring[i]);
    }
    c3.add_final(ring[0]);
    (c1, c2, c3)
}

/// A nested-concatenation system `v₁·v₂·…·v_k ⊆ c` with per-variable
/// bounds, requiring `k − 1` inductive concat-intersect steps (the paper's
/// §3.5 example uses k = 3 to illustrate the O(Q⁵) enumeration bound).
pub fn nested_system(k: usize, q: usize) -> System {
    assert!(k >= 2, "nesting needs at least two variables");
    let mut sys = System::new();
    let a = dprle_automata::ByteClass::singleton(b'a');
    let per_var = Nfa::class_repeat(a, 1, q.max(1));
    let mut lhs: Option<Expr> = None;
    for i in 0..k {
        let v = sys.var(&format!("v{i}"));
        let c = sys.constant(&format!("c{i}"), per_var.clone());
        sys.require(Expr::Var(v), c);
        lhs = Some(match lhs {
            None => Expr::Var(v),
            Some(e) => e.concat(Expr::Var(v)),
        });
    }
    let total = sys.constant("c_total", Nfa::class_repeat(a, k, k * q.max(1)));
    sys.require(lhs.expect("k >= 2"), total);
    sys
}

/// A system of `groups` independent CI-groups, each branching into
/// `disjuncts` disjunctive solutions — the workload the branch-parallel
/// worklist solver is built for.
///
/// Group `i` constrains a disjoint variable pair:
/// `aᵢ ⊆ x(yy)+`, `bᵢ ⊆ (yy)*z`, `aᵢ·bᵢ ⊆ x(yy|yyyy|…){1}z`-style targets
/// whose alternation width fixes the disjunct count. The worklist then
/// fans out to `disjuncts^groups` complete branches, every one paying the
/// (memo-free) verification cost — the part of the run that scales with
/// worker threads. All machines are built from regexes, so the system is
/// deterministic; solving it at any `jobs` count must produce identical
/// output (the determinism harness relies on this).
pub fn multi_group_system(groups: usize, disjuncts: usize) -> System {
    use dprle_regex::Regex;
    let d = disjuncts.max(1);
    let target: String = {
        let alts: Vec<String> = (1..=d).map(|k| "yy".repeat(k)).collect();
        format!("x({})z", alts.join("|"))
    };
    let compile = |pattern: &str| -> Nfa {
        Regex::new(pattern)
            .expect("generator patterns compile")
            .exact_language()
            .clone()
    };
    let cx = compile("x(yy)+");
    let cy = compile("(yy)*z");
    let ct = compile(&target);
    let mut sys = System::new();
    for g in 0..groups.max(1) {
        let a = sys.var(&format!("a{g}"));
        let b = sys.var(&format!("b{g}"));
        let kx = sys.constant(&format!("cx{g}"), cx.clone());
        let ky = sys.constant(&format!("cy{g}"), cy.clone());
        let kt = sys.constant(&format!("ct{g}"), ct.clone());
        sys.require(Expr::Var(a), kx);
        sys.require(Expr::Var(b), ky);
        sys.require(Expr::Var(a).concat(Expr::Var(b)), kt);
    }
    sys
}

/// Parameters for random system generation.
#[derive(Clone, Debug)]
pub struct RandomSystemConfig {
    /// Number of variables.
    pub vars: usize,
    /// Number of plain `v ⊆ c` constraints.
    pub subset_constraints: usize,
    /// Number of `v·w ⊆ c` constraints.
    pub concat_constraints: usize,
    /// State count for random constant machines.
    pub machine_states: usize,
}

impl Default for RandomSystemConfig {
    fn default() -> Self {
        RandomSystemConfig {
            vars: 3,
            subset_constraints: 3,
            concat_constraints: 1,
            machine_states: 5,
        }
    }
}

/// A random constraint system over a two-letter alphabet, deterministic
/// per seed. Used by the solver's fuzz/property tests: whatever the solver
/// returns must satisfy the system.
pub fn random_system(seed: u64, config: &RandomSystemConfig) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sys = System::new();
    let vars: Vec<_> = (0..config.vars.max(1))
        .map(|i| sys.var(&format!("v{i}")))
        .collect();
    let nfa_config = RandomNfaConfig {
        states: config.machine_states.max(2),
        alphabet: vec![b'a', b'b'],
        ..Default::default()
    };
    let mut const_count = 0usize;
    let mut fresh_const = |sys: &mut System, rng: &mut StdRng| {
        let machine = random_nonempty_nfa(rng.gen(), &nfa_config);
        let name = format!("c{const_count}");
        const_count += 1;
        sys.constant(&name, machine)
    };
    for _ in 0..config.subset_constraints {
        let v = vars[rng.gen_range(0..vars.len())];
        let c = fresh_const(&mut sys, &mut rng);
        sys.require(Expr::Var(v), c);
    }
    for _ in 0..config.concat_constraints {
        let v = vars[rng.gen_range(0..vars.len())];
        let w = vars[rng.gen_range(0..vars.len())];
        let c = fresh_const(&mut sys, &mut rng);
        sys.require(Expr::Var(v).concat(Expr::Var(w)), c);
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprle_core::ci::concat_intersect;
    use dprle_core::{solve, solve_first, SolveOptions};

    #[test]
    fn ci_instance_scales_with_q() {
        let (c1a, _, _) = ci_instance(4);
        let (c1b, _, _) = ci_instance(16);
        assert!(c1b.num_states() > c1a.num_states());
    }

    #[test]
    fn ci_instance_is_satisfiable() {
        let (c1, c2, c3) = ci_instance(4);
        let solutions = concat_intersect(&c1, &c2, &c3);
        assert!(!solutions.is_empty());
        for s in &solutions {
            assert!(dprle_automata::is_subset(&s.v1, &c1));
            assert!(dprle_automata::is_subset(&s.v2, &c2));
        }
    }

    #[test]
    fn dense_instance_is_satisfiable() {
        let (c1, c2, c3) = ci_instance_dense(4);
        assert!(!concat_intersect(&c1, &c2, &c3).is_empty());
    }

    #[test]
    fn modular_instance_attains_quadratic_products() {
        let (c1, c2, c3) = ci_instance_modular(8);
        let run = dprle_core::concat_intersect_full(&c1, &c2, &c3);
        // Position × modulus pairs: well above linear in input size.
        assert!(run.m5.num_states() > 3 * c1.num_states());
        assert!(!run.solutions.is_empty());
    }

    #[test]
    fn multi_group_system_branches_as_designed() {
        let sys = multi_group_system(3, 2);
        let (solution, stats) = dprle_core::solve_with_stats(&sys, &SolveOptions::default());
        assert_eq!(stats.groups, 3);
        // 2 disjuncts per group → 2³ complete branches, all satisfying.
        assert_eq!(stats.branches_completed, 8);
        assert_eq!(solution.assignments().len(), 8);
    }

    #[test]
    fn nested_system_solves() {
        let sys = nested_system(3, 3);
        let first = solve_first(&sys, &SolveOptions::default()).expect("satisfiable");
        for v in sys.var_ids() {
            assert!(!first.get(v).expect("assigned").is_empty_language());
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn nested_system_validates_k() {
        nested_system(1, 3);
    }

    #[test]
    fn random_systems_are_deterministic() {
        let cfg = RandomSystemConfig::default();
        let a = random_system(7, &cfg);
        let b = random_system(7, &cfg);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn random_system_solutions_satisfy() {
        let cfg = RandomSystemConfig::default();
        for seed in 0..10 {
            let sys = random_system(seed, &cfg);
            let solution = solve(&sys, &SolveOptions::default());
            for a in solution.assignments() {
                assert!(
                    dprle_core::satisfies_system(&sys, a),
                    "seed {seed}: returned assignment violates the system"
                );
            }
        }
    }
}
