//! The published evaluation data set, as shape specifications.
//!
//! The paper evaluates on three PHP applications (Figure 11) and 17
//! SQL-injection defect reports (Figure 12). The applications themselves
//! (eve 1.0, Utopia News Pro 1.3.0, warp 1.2.1) and the Wassermann–Su
//! defect reports are not redistributable; this module records the
//! *published per-row statistics* — basic-block count `|FG|`, constraint
//! count `|C|`, and the reported solve time — so the generator
//! (`crate::generate`) can synthesize programs with the same shape and the
//! benchmark harness can print paper-vs-measured tables.

/// One application of the paper's Figure 11.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// Version analyzed by the paper.
    pub version: &'static str,
    /// Number of PHP files.
    pub files: usize,
    /// Lines of code.
    pub loc: usize,
    /// Number of files with a generated exploit ("Vulnerable" column).
    pub vulnerable: usize,
}

/// Figure 11: the data set.
pub const FIG11_APPS: [AppSpec; 3] = [
    AppSpec {
        name: "eve",
        version: "1.0",
        files: 8,
        loc: 905,
        vulnerable: 1,
    },
    AppSpec {
        name: "utopia",
        version: "1.3.0",
        files: 24,
        loc: 5438,
        vulnerable: 4,
    },
    AppSpec {
        name: "warp",
        version: "1.2.1",
        files: 44,
        loc: 24365,
        vulnerable: 12,
    },
];

/// One vulnerability row of the paper's Figure 12.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VulnSpec {
    /// Application the file belongs to.
    pub app: &'static str,
    /// File/vulnerability name as printed in the paper.
    pub name: &'static str,
    /// `|FG|`: number of basic blocks in the file.
    pub fg: usize,
    /// `|C|`: number of constraints produced by symbolic execution.
    pub c: usize,
    /// `T_S`: the paper's reported constraint-solving time, in seconds
    /// (on a 2009-era 2.5 GHz Core 2 Duo).
    pub paper_seconds: f64,
    /// Whether this is the pathological row dominated by large string
    /// constants tracked through every machine transformation (`secure`,
    /// 577 s in the paper).
    pub heavy: bool,
}

/// Figure 12: the 17 analyzed vulnerabilities.
pub const FIG12_ROWS: [VulnSpec; 17] = [
    VulnSpec {
        app: "eve",
        name: "edit",
        fg: 58,
        c: 29,
        paper_seconds: 0.32,
        heavy: false,
    },
    VulnSpec {
        app: "utopia",
        name: "login",
        fg: 295,
        c: 16,
        paper_seconds: 0.052,
        heavy: false,
    },
    VulnSpec {
        app: "utopia",
        name: "profile",
        fg: 855,
        c: 16,
        paper_seconds: 0.006,
        heavy: false,
    },
    VulnSpec {
        app: "utopia",
        name: "styles",
        fg: 597,
        c: 156,
        paper_seconds: 0.65,
        heavy: false,
    },
    VulnSpec {
        app: "utopia",
        name: "comm",
        fg: 994,
        c: 102,
        paper_seconds: 0.26,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "cxapp",
        fg: 620,
        c: 10,
        paper_seconds: 0.054,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "ax_help",
        fg: 610,
        c: 4,
        paper_seconds: 0.010,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "usr_reg",
        fg: 608,
        c: 10,
        paper_seconds: 0.53,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "ax_ed",
        fg: 630,
        c: 10,
        paper_seconds: 0.063,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "cart_shop",
        fg: 856,
        c: 31,
        paper_seconds: 0.17,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "req_redir",
        fg: 640,
        c: 41,
        paper_seconds: 0.43,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "secure",
        fg: 648,
        c: 81,
        paper_seconds: 577.0,
        heavy: true,
    },
    VulnSpec {
        app: "warp",
        name: "a_cont",
        fg: 606,
        c: 10,
        paper_seconds: 0.057,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "usr_prf",
        fg: 740,
        c: 66,
        paper_seconds: 0.22,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "xw_mn",
        fg: 698,
        c: 387,
        paper_seconds: 0.50,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "castvote",
        fg: 710,
        c: 10,
        paper_seconds: 0.052,
        heavy: false,
    },
    VulnSpec {
        app: "warp",
        name: "pay_nfo",
        fg: 628,
        c: 10,
        paper_seconds: 0.18,
        heavy: false,
    },
];

/// The Figure 12 rows belonging to `app`.
pub fn rows_for_app(app: &str) -> Vec<&'static VulnSpec> {
    FIG12_ROWS.iter().filter(|r| r.app == app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_fig11_vulnerable_column() {
        for app in &FIG11_APPS {
            assert_eq!(
                rows_for_app(app.name).len(),
                app.vulnerable,
                "{} row count",
                app.name
            );
        }
        assert_eq!(FIG12_ROWS.len(), 17);
    }

    #[test]
    fn exactly_one_heavy_row() {
        let heavy: Vec<_> = FIG12_ROWS.iter().filter(|r| r.heavy).collect();
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy[0].name, "secure");
        assert_eq!(heavy[0].paper_seconds, 577.0);
    }

    #[test]
    fn sixteen_of_seventeen_under_a_second() {
        let fast = FIG12_ROWS.iter().filter(|r| r.paper_seconds < 1.0).count();
        assert_eq!(fast, 16);
    }
}
