//! Emits the full synthetic corpus as PHP-like source trees.
//!
//! ```text
//! corpus-gen [OUT_DIR]     (default: ./corpus-out)
//! ```
//!
//! Produces `OUT_DIR/<app>/<file>.php` for all three applications; the
//! emitted files can be fed to `dprle-analyze` to re-run the evaluation
//! from source.

use dprle_corpus::generate_corpus;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "corpus-out".to_owned())
        .into();
    for app in generate_corpus() {
        let dir = out.join(app.spec.name);
        let paths = app.write_sources(&dir)?;
        println!(
            "{} {}: wrote {} files ({} statements) to {}",
            app.spec.name,
            app.spec.version,
            paths.len(),
            app.total_statements(),
            dir.display()
        );
    }
    Ok(())
}
