//! NFA → regular expression conversion by state elimination.
//!
//! The decision procedure's answers are NFAs; presenting them to humans
//! (as the paper does — its solutions are written `L(xyy|xyyyy)`, not as
//! state tables) needs the reverse direction of Thompson's construction.
//! This module implements the classic GNFA state-elimination algorithm
//! with light algebraic simplification, plus a size cap so pathological
//! machines degrade gracefully instead of producing megabyte regexes.

use crate::ast::Ast;
use dprle_automata::{ByteClass, Nfa, StateId};
use std::collections::HashMap;

/// Converts a machine into a regular expression for the same language.
///
/// Returns `None` when the language is empty (there is no regex constant
/// for ∅ in the [`Ast`]) or when the intermediate expression exceeds
/// `max_nodes` AST nodes (state elimination can blow up exponentially; the
/// caller should fall back to a structural rendering).
///
/// # Examples
///
/// ```
/// use dprle_automata::{ops, Nfa};
/// use dprle_regex::from_nfa::nfa_to_regex;
///
/// let m = ops::union(&Nfa::literal(b"xyy"), &Nfa::literal(b"xyyyy"));
/// let ast = nfa_to_regex(&m, 1000).expect("nonempty");
/// // The exact text depends on elimination order; the language must match.
/// let back = dprle_regex::compile_exact(&ast).expect("compiles");
/// assert!(dprle_automata::equivalent(&m, &back));
/// ```
pub fn nfa_to_regex(nfa: &Nfa, max_nodes: usize) -> Option<Ast> {
    // Work on the minimal DFA: fewer states, and deterministic structure
    // tends to produce dramatically smaller expressions.
    let min = dprle_automata::minimize(nfa);
    if min.finals().is_empty() {
        return None;
    }
    let mut gnfa = Gnfa::from_nfa(&min);
    gnfa.eliminate(max_nodes)
}

/// Renders a machine as a regex string, falling back to a structural
/// summary when conversion is not possible or too large.
///
/// This is the presentation helper used by solution printers: small
/// languages come out as readable patterns (`xyy|xyyyy`), huge ones as
/// `NFA(… states …)` summaries.
pub fn display_language(nfa: &Nfa, max_nodes: usize) -> String {
    match nfa_to_regex(nfa, max_nodes) {
        Some(ast) => {
            let s = ast.to_string();
            if s.is_empty() {
                "(empty string)".to_owned()
            } else {
                s
            }
        }
        None if nfa.is_empty_language() => "(empty language)".to_owned(),
        None => nfa.to_string(),
    }
}

/// A generalized NFA: single start and accept, regex-labelled edges.
struct Gnfa {
    /// Edge labels, keyed by (from, to). Missing = no edge (∅).
    edges: HashMap<(usize, usize), Ast>,
    /// States still to eliminate (interior states).
    interior: Vec<usize>,
    start: usize,
    accept: usize,
}

impl Gnfa {
    fn from_nfa(nfa: &Nfa) -> Gnfa {
        let n = nfa.num_states();
        let start = n;
        let accept = n + 1;
        let mut gnfa = Gnfa {
            edges: HashMap::new(),
            interior: (0..n).collect(),
            start,
            accept,
        };
        gnfa.add(start, nfa.start().index(), Ast::Empty);
        for f in nfa.finals() {
            gnfa.add(f.index(), accept, Ast::Empty);
        }
        for q in nfa.state_ids() {
            for &(class, t) in &nfa.state(q).edges {
                if !class.is_empty() {
                    gnfa.add(q.index(), t.index(), Ast::Class(class));
                }
            }
            for &t in &nfa.state(q).eps {
                gnfa.add(q.index(), t.index(), Ast::Empty);
            }
        }
        let _ = StateId(0); // (explicit: indices, not StateIds, from here on)
        gnfa
    }

    /// Adds `label` as an alternative on the (from, to) edge.
    fn add(&mut self, from: usize, to: usize, label: Ast) {
        match self.edges.remove(&(from, to)) {
            None => {
                self.edges.insert((from, to), label);
            }
            Some(existing) => {
                self.edges.insert((from, to), alt2(existing, label));
            }
        }
    }

    /// Eliminates interior states one at a time (cheapest first), patching
    /// every (in, out) pair with `in · self* · out`.
    fn eliminate(&mut self, max_nodes: usize) -> Option<Ast> {
        while !self.interior.is_empty() {
            // Pick the state with the fewest in×out rewrites.
            let (pos, &state) = self
                .interior
                .iter()
                .enumerate()
                .min_by_key(|(_, &s)| {
                    let ins = self
                        .edges
                        .keys()
                        .filter(|(f, t)| *t == s && *f != s)
                        .count();
                    let outs = self
                        .edges
                        .keys()
                        .filter(|(f, t)| *f == s && *t != s)
                        .count();
                    ins * outs
                })
                .expect("interior nonempty");
            self.interior.swap_remove(pos);

            let self_loop = self.edges.remove(&(state, state));
            let ins: Vec<(usize, Ast)> = self
                .edges
                .iter()
                .filter(|((f, t), _)| *t == state && *f != state)
                .map(|((f, _), a)| (*f, a.clone()))
                .collect();
            let outs: Vec<(usize, Ast)> = self
                .edges
                .iter()
                .filter(|((f, t), _)| *f == state && *t != state)
                .map(|((_, t), a)| (*t, a.clone()))
                .collect();
            self.edges.retain(|(f, t), _| *f != state && *t != state);

            let loop_part = self_loop.map(star);
            for (src, in_label) in &ins {
                for (dst, out_label) in &outs {
                    let mut parts = vec![in_label.clone()];
                    if let Some(l) = &loop_part {
                        parts.push(l.clone());
                    }
                    parts.push(out_label.clone());
                    let label = concat_all(parts);
                    self.add(*src, *dst, label);
                }
            }
            // Size guard.
            let total: usize = self.edges.values().map(ast_size).sum();
            if total > max_nodes {
                return None;
            }
        }
        self.edges.remove(&(self.start, self.accept)).map(simplify)
    }
}

// ---------------------------------------------------------------------
// Smart constructors and simplification
// ---------------------------------------------------------------------

fn alt2(a: Ast, b: Ast) -> Ast {
    let mut parts = Vec::new();
    flatten_alt(a, &mut parts);
    flatten_alt(b, &mut parts);
    // Merge single-byte-class alternatives: a|b|[0-9] → [ab0-9].
    let mut class = ByteClass::EMPTY;
    let mut rest: Vec<Ast> = Vec::new();
    let mut saw_class = false;
    for p in parts {
        match p {
            Ast::Class(c) => {
                class = class.union(&c);
                saw_class = true;
            }
            other => {
                if !rest.contains(&other) {
                    rest.push(other);
                }
            }
        }
    }
    let mut out = rest;
    if saw_class && !class.is_empty() {
        out.insert(0, Ast::Class(class));
    }
    match out.len() {
        0 => Ast::Empty,
        1 => out.pop().expect("one part"),
        _ => {
            // ε | e → e? when e doesn't already accept ε.
            if let Some(idx) = out.iter().position(|p| *p == Ast::Empty) {
                out.remove(idx);
                let inner = if out.len() == 1 {
                    out.pop().expect("one part")
                } else {
                    Ast::Alt(out)
                };
                Ast::Optional(Box::new(inner))
            } else {
                Ast::Alt(out)
            }
        }
    }
}

fn flatten_alt(a: Ast, out: &mut Vec<Ast>) {
    match a {
        Ast::Alt(parts) => {
            for p in parts {
                flatten_alt(p, out);
            }
        }
        other => out.push(other),
    }
}

fn concat_all(parts: Vec<Ast>) -> Ast {
    let mut out: Vec<Ast> = Vec::new();
    for p in parts {
        match p {
            Ast::Empty => {}
            Ast::Concat(inner) => out.extend(inner.into_iter().filter(|p| *p != Ast::Empty)),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Ast::Empty,
        1 => out.pop().expect("one part"),
        _ => Ast::Concat(out),
    }
}

fn star(a: Ast) -> Ast {
    match a {
        Ast::Empty => Ast::Empty,
        Ast::Star(inner) => Ast::Star(inner),
        Ast::Optional(inner) => Ast::Star(inner),
        Ast::Plus(inner) => Ast::Star(inner),
        other => Ast::Star(Box::new(other)),
    }
}

fn ast_size(a: &Ast) -> usize {
    match a {
        Ast::Empty | Ast::Class(_) | Ast::Anchor(_) => 1,
        Ast::Concat(parts) | Ast::Alt(parts) => 1 + parts.iter().map(ast_size).sum::<usize>(),
        Ast::Star(inner) | Ast::Plus(inner) | Ast::Optional(inner) => 1 + ast_size(inner),
        Ast::Repeat { inner, .. } => 1 + ast_size(inner),
    }
}

/// Final cosmetic pass: `e e* → e+` and nested flattening.
fn simplify(a: Ast) -> Ast {
    match a {
        Ast::Concat(parts) => {
            let parts: Vec<Ast> = parts.into_iter().map(simplify).collect();
            let mut out: Vec<Ast> = Vec::new();
            for p in parts {
                match (&mut out.last_mut(), &p) {
                    (Some(last), Ast::Star(inner)) if **last == **inner => {
                        **last = Ast::Plus(inner.clone());
                        continue;
                    }
                    _ => {}
                }
                out.push(p);
            }
            concat_all(out)
        }
        Ast::Alt(parts) => {
            let parts: Vec<Ast> = parts.into_iter().map(simplify).collect();
            parts.into_iter().fold(
                Ast::Empty,
                |acc, p| {
                    if acc == Ast::Empty {
                        p
                    } else {
                        alt2(acc, p)
                    }
                },
            )
        }
        Ast::Star(inner) => star(simplify(*inner)),
        Ast::Plus(inner) => Ast::Plus(Box::new(simplify(*inner))),
        Ast::Optional(inner) => Ast::Optional(Box::new(simplify(*inner))),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_exact;
    use dprle_automata::{equivalent, ops};

    fn roundtrips(m: &Nfa) {
        let ast = nfa_to_regex(m, 100_000).expect("nonempty");
        let back = compile_exact(&ast).expect("compiles");
        assert!(equivalent(m, &back), "language mismatch for {ast}");
    }

    #[test]
    fn literal_roundtrip() {
        roundtrips(&Nfa::literal(b"abc"));
        let ast = nfa_to_regex(&Nfa::literal(b"abc"), 1000).expect("nonempty");
        assert_eq!(ast.to_string(), "abc");
    }

    #[test]
    fn epsilon_and_empty() {
        let eps = nfa_to_regex(&Nfa::epsilon(), 1000).expect("ε is nonempty");
        assert_eq!(eps, Ast::Empty);
        assert_eq!(nfa_to_regex(&Nfa::empty_language(), 1000), None);
    }

    #[test]
    fn union_roundtrip() {
        roundtrips(&ops::union(&Nfa::literal(b"xyy"), &Nfa::literal(b"xyyyy")));
    }

    #[test]
    fn star_roundtrip() {
        roundtrips(&ops::star(&Nfa::literal(b"ab")));
        roundtrips(&ops::plus(&Nfa::literal(b"a")));
    }

    #[test]
    fn class_edges_stay_classes() {
        let m = Nfa::class(ByteClass::range(b'0', b'9'));
        let ast = nfa_to_regex(&m, 1000).expect("nonempty");
        assert_eq!(ast.to_string(), "[0-9]");
    }

    #[test]
    fn complex_machine_roundtrip() {
        // ((a|bb)*c)|d+ exercised through concat/star/union machinery.
        let a = Nfa::literal(b"a");
        let bb = Nfa::literal(b"bb");
        let c = Nfa::literal(b"c");
        let d = Nfa::literal(b"d");
        let m = ops::union(
            &ops::concat(&ops::star(&ops::union(&a, &bb)), &c).nfa,
            &ops::plus(&d),
        );
        roundtrips(&m);
    }

    #[test]
    fn size_cap_degrades_gracefully() {
        // A machine whose regex needs more than 2 nodes.
        let m = ops::union(&Nfa::literal(b"abcdef"), &Nfa::literal(b"ghijkl"));
        assert_eq!(nfa_to_regex(&m, 2), None);
        let shown = display_language(&m, 2);
        assert!(shown.contains("NFA("), "fallback rendering: {shown}");
    }

    #[test]
    fn display_language_forms() {
        assert_eq!(
            display_language(&Nfa::empty_language(), 100),
            "(empty language)"
        );
        assert_eq!(display_language(&Nfa::epsilon(), 100), "(empty string)");
        assert_eq!(display_language(&Nfa::literal(b"hi"), 100), "hi");
    }

    #[test]
    fn sigma_star_is_compact() {
        let ast = nfa_to_regex(&Nfa::sigma_star(), 1000).expect("nonempty");
        // One star over the full class.
        assert!(matches!(ast, Ast::Star(_)), "got {ast}");
        assert_eq!(
            ast.to_string(),
            "(.)*".replace('.', &ByteClass::FULL.to_string())
        );
    }

    #[test]
    fn random_machines_roundtrip() {
        use dprle_automata::generate::{random_nonempty_nfa, RandomNfaConfig};
        let cfg = RandomNfaConfig {
            states: 5,
            alphabet: vec![b'a', b'b'],
            ..Default::default()
        };
        for seed in 0..25 {
            let m = random_nonempty_nfa(seed, &cfg);
            roundtrips(&m);
        }
    }
}
