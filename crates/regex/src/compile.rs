//! Thompson compilation of regex ASTs into NFAs.
//!
//! Two language readings are provided, matching how `preg_match` patterns
//! are consumed by the paper's front end:
//!
//! * [`compile_exact`] — `L(re)`: the strings the pattern matches *in
//!   full*. Anchors are only meaningful at the pattern edges (where they are
//!   redundant) and are rejected elsewhere.
//! * [`compile_search`] — the strings in which the pattern matches
//!   *somewhere*, i.e. PCRE `preg_match` semantics. Top-level edge anchors
//!   control whether Σ* padding is added on each side. This is precisely the
//!   reading under which the paper's Figure 1 bug (a missing `^`) becomes
//!   visible as a larger-than-intended accepted language.

use crate::ast::{Anchor, Ast};
use crate::error::{ParseRegexError, RegexErrorKind};
use dprle_automata::{ops, Nfa};

/// Compiles `ast` with exact (fully anchored) semantics.
///
/// # Errors
///
/// Returns [`RegexErrorKind::MisplacedAnchor`] if an anchor occurs anywhere
/// other than the outermost edges of the pattern.
pub fn compile_exact(ast: &Ast) -> Result<Nfa, ParseRegexError> {
    let (body, _, _) = strip_edge_anchors(ast)?;
    compile_anchor_free(&body)
}

/// Compiles `ast` with search (`preg_match`) semantics: the language of
/// subject strings in which the pattern matches at some position.
///
/// # Errors
///
/// Returns [`RegexErrorKind::MisplacedAnchor`] for anchors that are not at
/// the outermost edges of the pattern.
pub fn compile_search(ast: &Ast) -> Result<Nfa, ParseRegexError> {
    let (body, anchored_start, anchored_end) = strip_edge_anchors(ast)?;
    let mut m = compile_anchor_free(&body)?;
    if !anchored_start {
        m = ops::concat(&Nfa::sigma_star(), &m).nfa;
    }
    if !anchored_end {
        m = ops::concat(&m, &Nfa::sigma_star()).nfa;
    }
    Ok(m)
}

/// Removes a leading `^` and trailing `$` from the top-level concatenation,
/// reporting which were present.
///
/// # Errors
///
/// Any anchor that is *not* in one of those two positions (e.g. under a
/// star, inside an alternative, or in the middle of the pattern) is an
/// error: its language reading would require intersection with position
/// information this compiler does not track.
fn strip_edge_anchors(ast: &Ast) -> Result<(Ast, bool, bool), ParseRegexError> {
    let mut parts: Vec<Ast> = match ast {
        Ast::Concat(parts) => parts.clone(),
        other => vec![other.clone()],
    };
    let mut anchored_start = false;
    let mut anchored_end = false;
    if matches!(parts.first(), Some(Ast::Anchor(Anchor::Start))) {
        anchored_start = true;
        parts.remove(0);
    }
    if matches!(parts.last(), Some(Ast::Anchor(Anchor::End))) {
        anchored_end = true;
        parts.pop();
    }
    let body = match parts.len() {
        0 => Ast::Empty,
        1 => parts.pop().expect("one part"),
        _ => Ast::Concat(parts),
    };
    if body.has_anchor() {
        return Err(ParseRegexError {
            pos: 0,
            kind: RegexErrorKind::MisplacedAnchor,
        });
    }
    Ok((body, anchored_start, anchored_end))
}

fn compile_anchor_free(ast: &Ast) -> Result<Nfa, ParseRegexError> {
    Ok(match ast {
        Ast::Empty => Nfa::epsilon(),
        Ast::Class(c) => Nfa::class(*c),
        Ast::Concat(parts) => {
            let mut m = Nfa::epsilon();
            for p in parts {
                m = ops::concat(&m, &compile_anchor_free(p)?).nfa;
            }
            m
        }
        Ast::Alt(parts) => {
            let machines: Vec<Nfa> = parts
                .iter()
                .map(compile_anchor_free)
                .collect::<Result<_, _>>()?;
            ops::union_all(machines.iter())
        }
        Ast::Star(inner) => ops::star(&compile_anchor_free(inner)?),
        Ast::Plus(inner) => ops::plus(&compile_anchor_free(inner)?),
        Ast::Optional(inner) => ops::optional(&compile_anchor_free(inner)?),
        Ast::Repeat { inner, min, max } => {
            let m = compile_anchor_free(inner)?;
            match max {
                Some(max) => ops::repeat_range(&m, *min as usize, *max as usize),
                None => ops::concat(&ops::repeat_exact(&m, *min as usize), &ops::star(&m)).nfa,
            }
        }
        Ast::Anchor(_) => {
            return Err(ParseRegexError {
                pos: 0,
                kind: RegexErrorKind::MisplacedAnchor,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn exact(pattern: &str) -> Nfa {
        compile_exact(&parse(pattern).expect("parse")).expect("compile")
    }

    fn search(pattern: &str) -> Nfa {
        compile_search(&parse(pattern).expect("parse")).expect("compile")
    }

    #[test]
    fn exact_literal() {
        let m = exact("abc");
        assert!(m.contains(b"abc"));
        assert!(!m.contains(b"xabc"));
        assert!(!m.contains(b"abcx"));
    }

    #[test]
    fn exact_quantifiers() {
        let m = exact("a{2,3}b?");
        assert!(m.contains(b"aa"));
        assert!(m.contains(b"aaab"));
        assert!(!m.contains(b"a"));
        assert!(!m.contains(b"aaaa"));
        let unbounded = exact("a{2,}");
        assert!(unbounded.contains(b"aaaaa"));
        assert!(!unbounded.contains(b"a"));
    }

    #[test]
    fn exact_alternation_and_groups() {
        let m = exact("(ab|cd)+");
        assert!(m.contains(b"ab"));
        assert!(m.contains(b"abcdab"));
        assert!(!m.contains(b"abc"));
    }

    #[test]
    fn search_pads_unanchored_sides() {
        // The paper's faulty filter: /[\d]+$/ — missing ^ means anything may
        // precede the digits. This is the bug the running example exploits.
        let faulty = search("[\\d]+$");
        assert!(faulty.contains(b"123"));
        assert!(faulty.contains(b"'; DROP news --9"));
        assert!(!faulty.contains(b"123x"));
        // The corrected filter /^[\d]+$/ accepts digits only.
        let fixed = search("^[\\d]+$");
        assert!(fixed.contains(b"123"));
        assert!(!fixed.contains(b"'; DROP news --9"));
    }

    #[test]
    fn search_unanchored_is_substring_match() {
        let m = search("needle");
        assert!(m.contains(b"needle"));
        assert!(m.contains(b"hay needle stack"));
        assert!(!m.contains(b"needl"));
    }

    #[test]
    fn search_start_anchor_only() {
        let m = search("^ab");
        assert!(m.contains(b"ab"));
        assert!(m.contains(b"abXYZ"));
        assert!(!m.contains(b"Xab"));
    }

    #[test]
    fn misplaced_anchor_is_rejected() {
        let ast = parse("a$b").expect("parses");
        assert!(compile_exact(&ast).is_err());
        assert!(compile_search(&ast).is_err());
        let under_star = parse("(^a)*").expect("parses");
        assert!(compile_search(&under_star).is_err());
    }

    #[test]
    fn edge_anchors_are_redundant_for_exact() {
        let plain = exact("ab");
        let anchored = exact("^ab$");
        for w in [&b"ab"[..], b"a", b"abc", b""] {
            assert_eq!(plain.contains(w), anchored.contains(w));
        }
    }

    #[test]
    fn empty_pattern_search_is_sigma_star() {
        let m = search("");
        assert!(m.contains(b""));
        assert!(m.contains(b"anything"));
    }

    #[test]
    fn dot_excludes_newline() {
        let m = exact(".+");
        assert!(m.contains(b"ab"));
        assert!(!m.contains(b"a\nb"));
    }
}
