//! A reference matcher: direct, obviously-correct interpretation of the
//! regex AST, used for differential testing of the Thompson compiler and
//! the automata pipeline.
//!
//! The implementation computes, for a pattern and an input, the set of
//! *end positions* reachable from a start position — a textbook
//! continuation-set matcher with a fixpoint for `*`/`+` so nullable inner
//! expressions cannot loop. It is deliberately simple and slow
//! (exponential in the worst case); its only job is to disagree with the
//! compiled machines when one of them is wrong.

use crate::ast::Ast;
use std::collections::BTreeSet;

/// Whether `ast` matches `input` *in full*, by direct interpretation.
///
/// # Panics
///
/// Panics if the AST contains anchors (use the compiler's anchor handling
/// first; the oracle models languages, not positions).
pub fn oracle_is_full_match(ast: &Ast, input: &[u8]) -> bool {
    ends(ast, input, 0).contains(&input.len())
}

/// End positions reachable when matching `ast` against `input[start..]`.
fn ends(ast: &Ast, input: &[u8], start: usize) -> BTreeSet<usize> {
    match ast {
        Ast::Empty => BTreeSet::from([start]),
        Ast::Class(c) => {
            if start < input.len() && c.contains(input[start]) {
                BTreeSet::from([start + 1])
            } else {
                BTreeSet::new()
            }
        }
        Ast::Concat(parts) => {
            let mut cur = BTreeSet::from([start]);
            for p in parts {
                let mut next = BTreeSet::new();
                for &pos in &cur {
                    next.extend(ends(p, input, pos));
                }
                cur = next;
                if cur.is_empty() {
                    break;
                }
            }
            cur
        }
        Ast::Alt(parts) => {
            let mut out = BTreeSet::new();
            for p in parts {
                out.extend(ends(p, input, start));
            }
            out
        }
        Ast::Star(inner) => closure(inner, input, start, true),
        Ast::Plus(inner) => {
            // One mandatory iteration, then the closure.
            let mut out = BTreeSet::new();
            for pos in ends(inner, input, start) {
                out.extend(closure(inner, input, pos, true));
            }
            out
        }
        Ast::Optional(inner) => {
            let mut out = ends(inner, input, start);
            out.insert(start);
            out
        }
        Ast::Repeat { inner, min, max } => {
            let mut cur = BTreeSet::from([start]);
            // Mandatory prefix.
            for _ in 0..*min {
                let mut next = BTreeSet::new();
                for &pos in &cur {
                    next.extend(ends(inner, input, pos));
                }
                cur = next;
                if cur.is_empty() {
                    return cur;
                }
            }
            match max {
                None => {
                    let mut out = BTreeSet::new();
                    for &pos in &cur {
                        out.extend(closure(inner, input, pos, true));
                    }
                    out
                }
                Some(max) => {
                    let mut out = cur.clone();
                    let mut frontier = cur;
                    for _ in *min..*max {
                        let mut next = BTreeSet::new();
                        for &pos in &frontier {
                            next.extend(ends(inner, input, pos));
                        }
                        frontier = next.difference(&out).copied().collect();
                        out.extend(next);
                        if frontier.is_empty() {
                            break;
                        }
                    }
                    out
                }
            }
        }
        Ast::Anchor(_) => panic!("oracle does not interpret anchors"),
    }
}

/// Positions reachable by zero or more iterations of `inner` from `start`.
fn closure(inner: &Ast, input: &[u8], start: usize, include_start: bool) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    if include_start {
        out.insert(start);
    }
    let mut frontier = BTreeSet::from([start]);
    while !frontier.is_empty() {
        let mut next = BTreeSet::new();
        for &pos in &frontier {
            for end in ends(inner, input, pos) {
                if !out.contains(&end) {
                    next.insert(end);
                }
            }
        }
        out.extend(next.iter().copied());
        frontier = next;
    }
    out
}

/// Generates a random anchor-free AST for differential testing;
/// deterministic per seed.
pub fn random_ast(seed: u64, max_depth: usize) -> Ast {
    // Tiny xorshift so the regex crate needs no rand dependency.
    fn next(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }
    fn gen(state: &mut u64, depth: usize) -> Ast {
        let choice = if depth == 0 {
            next(state) % 2
        } else {
            next(state) % 8
        };
        let byte = |state: &mut u64| b'a' + (next(state) % 3) as u8;
        match choice {
            0 => Ast::byte(byte(state)),
            1 => Ast::Class(dprle_automata::ByteClass::from_bytes([
                byte(state),
                byte(state),
            ])),
            2 => Ast::Concat(vec![gen(state, depth - 1), gen(state, depth - 1)]),
            3 => Ast::Alt(vec![gen(state, depth - 1), gen(state, depth - 1)]),
            4 => Ast::Star(Box::new(gen(state, depth - 1))),
            5 => Ast::Plus(Box::new(gen(state, depth - 1))),
            6 => Ast::Optional(Box::new(gen(state, depth - 1))),
            _ => {
                let min = (next(state) % 3) as u32;
                let extra = (next(state) % 3) as u32;
                let max = if next(state).is_multiple_of(4) {
                    None
                } else {
                    Some(min + extra)
                };
                Ast::Repeat {
                    inner: Box::new(gen(state, depth - 1)),
                    min,
                    max,
                }
            }
        }
    }
    let mut state = seed | 1;
    gen(&mut state, max_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_exact;
    use crate::parser::parse;

    fn oracle(pattern: &str, input: &[u8]) -> bool {
        oracle_is_full_match(&parse(pattern).expect("parses"), input)
    }

    #[test]
    fn oracle_basics() {
        assert!(oracle("abc", b"abc"));
        assert!(!oracle("abc", b"ab"));
        assert!(oracle("a*", b""));
        assert!(oracle("a*", b"aaa"));
        assert!(!oracle("a+", b""));
        assert!(oracle("(ab|c)+", b"abcab"));
        assert!(oracle("a{2,3}", b"aa"));
        assert!(!oracle("a{2,3}", b"aaaa"));
        assert!(oracle("a{2,}", b"aaaaa"));
    }

    #[test]
    fn oracle_handles_nullable_star_without_looping() {
        // (a?)* can iterate without consuming; the fixpoint must terminate.
        assert!(oracle("(a?)*", b""));
        assert!(oracle("(a?)*", b"aaa"));
        assert!(oracle("(a*)*", b"aa"));
        assert!(!oracle("(a*)*", b"b"));
    }

    #[test]
    fn differential_against_compiler_on_fixed_patterns() {
        let patterns = [
            "a",
            "ab",
            "a|b",
            "a*",
            "a+b?",
            "(ab)*a",
            "a{0,2}b{1,3}",
            "(a|bb)*",
            "[ab]c*",
            "((a)(b))|c",
            "(a?b){2}",
        ];
        let words: Vec<Vec<u8>> = all_words(4);
        for pattern in patterns {
            let ast = parse(pattern).expect("parses");
            let compiled = compile_exact(&ast).expect("compiles");
            for w in &words {
                assert_eq!(
                    oracle_is_full_match(&ast, w),
                    compiled.contains(w),
                    "pattern {pattern} word {w:?}"
                );
            }
        }
    }

    #[test]
    fn differential_against_compiler_on_random_asts() {
        let words: Vec<Vec<u8>> = all_words(4);
        for seed in 0..200u64 {
            let ast = random_ast(seed, 3);
            let compiled = compile_exact(&ast).expect("anchor-free compiles");
            for w in &words {
                assert_eq!(
                    oracle_is_full_match(&ast, w),
                    compiled.contains(w),
                    "seed {seed} ast {ast} word {w:?}"
                );
            }
        }
    }

    #[test]
    fn random_ast_is_deterministic() {
        assert_eq!(random_ast(9, 3), random_ast(9, 3));
    }

    fn all_words(max_len: usize) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = vec![Vec::new()];
        let mut layer: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &layer {
                for b in [b'a', b'b', b'c'] {
                    let mut v = w.clone();
                    v.push(b);
                    next.push(v);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }
}
