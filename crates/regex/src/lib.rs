//! # dprle-regex
//!
//! Regular-expression front end for the DPRLE decision procedure: a parser
//! for the PCRE-style subset used by the paper's PHP front end (character
//! classes, escapes like `\d`, anchors, alternation, quantifiers) and a
//! Thompson compiler targeting [`dprle_automata::Nfa`].
//!
//! The convenience type [`Regex`] bundles a pattern with its compiled
//! machines:
//!
//! ```
//! use dprle_regex::Regex;
//!
//! // The faulty input filter from the paper's Figure 1 (missing `^`).
//! let filter = Regex::new("[\\d]+$")?;
//! assert!(filter.is_match(b"42"));                   // intended input
//! assert!(filter.is_match(b"' OR 1=1 ; DROP news --9")); // the exploit!
//! assert!(!filter.is_match(b"no digits at the end"));
//! # Ok::<(), dprle_regex::ParseRegexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod from_nfa;
pub mod oracle;
pub mod parser;

pub use ast::{Anchor, Ast};
pub use compile::{compile_exact, compile_search};
pub use error::{ParseRegexError, RegexErrorKind};
pub use from_nfa::{display_language, nfa_to_regex};
pub use oracle::oracle_is_full_match;
pub use parser::parse;

use dprle_automata::Nfa;

/// A compiled regular expression with `preg_match` (search) semantics.
///
/// `is_match` answers the same question PHP's `preg_match($re, $s)` does;
/// [`Regex::search_language`] and [`Regex::exact_language`] expose the two
/// language readings as NFAs for use in constraint systems.
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    search: Nfa,
    exact: Nfa,
}

impl Regex {
    /// Parses and compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseRegexError`] for malformed or unsupported syntax,
    /// including anchors in positions the compiler cannot interpret.
    pub fn new(pattern: &str) -> Result<Regex, ParseRegexError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            pattern: pattern.to_owned(),
            search: compile_search(&ast)?,
            exact: compile_exact(&ast)?,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether the pattern matches somewhere in `subject` (PCRE
    /// `preg_match` semantics).
    pub fn is_match(&self, subject: &[u8]) -> bool {
        self.search.contains(subject)
    }

    /// Whether the pattern matches `subject` in full.
    pub fn is_full_match(&self, subject: &[u8]) -> bool {
        self.exact.contains(subject)
    }

    /// The language of subjects in which the pattern matches somewhere.
    pub fn search_language(&self) -> &Nfa {
        &self.search
    }

    /// The language of subjects the pattern matches in full.
    pub fn exact_language(&self) -> &Nfa {
        &self.exact
    }
}

impl std::fmt::Display for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "/{}/", self.pattern)
    }
}

impl std::str::FromStr for Regex {
    type Err = ParseRegexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Regex::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_type_bundles_both_semantics() {
        let re = Regex::new("ab+").expect("compiles");
        assert!(re.is_match(b"xxabbyy"));
        assert!(!re.is_full_match(b"xxabbyy"));
        assert!(re.is_full_match(b"abb"));
        assert_eq!(re.pattern(), "ab+");
        assert_eq!(re.to_string(), "/ab+/");
    }

    #[test]
    fn from_str_parses() {
        let re: Regex = "x|y".parse().expect("parses");
        assert!(re.is_full_match(b"x"));
        assert!("(".parse::<Regex>().is_err());
    }
}
