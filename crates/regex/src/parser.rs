//! Recursive-descent parser for the PCRE-style subset.
//!
//! Grammar (standard precedence: alternation < concatenation < repetition):
//!
//! ```text
//! alt    ::= concat ('|' concat)*
//! concat ::= repeat*
//! repeat ::= atom ('*' | '+' | '?' | '{' bounds '}')*
//! atom   ::= '(' alt ')' | '[' class ']' | '.' | '^' | '$' | escape | byte
//! ```
//!
//! Unsupported PCRE constructs (backreferences, lookaround, named groups)
//! are rejected with a positioned error rather than silently misparsed.
//! Lazy quantifiers parse as nested `?` and recognize the same language as
//! their greedy counterparts.

use crate::ast::{Anchor, Ast};
use crate::error::{ParseRegexError, RegexErrorKind};
use dprle_automata::ByteClass;

/// Parses a pattern into an [`Ast`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] describing the offending position for
/// malformed or unsupported syntax.
pub fn parse(pattern: &str) -> Result<Ast, ParseRegexError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alt()?;
    if p.pos != p.input.len() {
        return Err(p.error(RegexErrorKind::UnbalancedParen));
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, kind: RegexErrorKind) -> ParseRegexError {
        ParseRegexError {
            pos: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alt(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = vec![self.concat()?];
        while self.eat(b'|') {
            parts.push(self.concat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Ast::Alt(parts)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut ast = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    ast = Ast::Star(Box::new(ast));
                }
                Some(b'+') => {
                    self.pos += 1;
                    ast = Ast::Plus(Box::new(ast));
                }
                Some(b'?') => {
                    // Note: a lazy quantifier such as `a*?` parses as
                    // `(a*)?`, which recognizes the same language as PCRE's
                    // lazy `a*?` — laziness affects match positions only.
                    self.pos += 1;
                    ast = Ast::Optional(Box::new(ast));
                }
                Some(b'{') => {
                    // `{` only begins a bound when followed by a digit or
                    // comma; otherwise it is a literal brace (PCRE behavior).
                    match self.input.get(self.pos + 1) {
                        Some(c) if c.is_ascii_digit() || *c == b',' => {
                            self.pos += 1;
                            let (min, max) = self.bounds()?;
                            ast = Ast::Repeat {
                                inner: Box::new(ast),
                                min,
                                max,
                            };
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        Ok(ast)
    }

    fn bounds(&mut self) -> Result<(u32, Option<u32>), ParseRegexError> {
        let min = self.number()?;
        if self.eat(b'}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(b',') {
            return Err(self.error(RegexErrorKind::MalformedBound));
        }
        if self.eat(b'}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat(b'}') {
            return Err(self.error(RegexErrorKind::MalformedBound));
        }
        if max < min {
            return Err(self.error(RegexErrorKind::MalformedBound));
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<u32, ParseRegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error(RegexErrorKind::MalformedBound));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|_| self.error(RegexErrorKind::MalformedBound))
    }

    fn atom(&mut self) -> Result<Ast, ParseRegexError> {
        match self.bump() {
            Some(b'(') => {
                if self.peek() == Some(b'?') {
                    return Err(self.error(RegexErrorKind::UnsupportedGroup));
                }
                let inner = self.alt()?;
                if !self.eat(b')') {
                    return Err(self.error(RegexErrorKind::UnbalancedParen));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::Class(
                ByteClass::FULL.difference(&ByteClass::singleton(b'\n')),
            )),
            Some(b'^') => Ok(Ast::Anchor(Anchor::Start)),
            Some(b'$') => Ok(Ast::Anchor(Anchor::End)),
            Some(b'\\') => {
                let class = self.escape()?;
                Ok(Ast::Class(class))
            }
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                let _ = b;
                Err(self.error(RegexErrorKind::DanglingQuantifier))
            }
            Some(b) => Ok(Ast::byte(b)),
            None => Err(self.error(RegexErrorKind::UnexpectedEnd)),
        }
    }

    /// Parses the body of a `[...]` class (the `[` has been consumed).
    fn class(&mut self) -> Result<Ast, ParseRegexError> {
        let negated = self.eat(b'^');
        let mut class = ByteClass::EMPTY;
        let mut first = true;
        loop {
            // POSIX named class, e.g. [[:digit:]].
            if self.peek() == Some(b'[') && self.input.get(self.pos + 1) == Some(&b':') {
                class = class.union(&self.posix_class()?);
                first = false;
                continue;
            }
            let b = match self.bump() {
                None => return Err(self.error(RegexErrorKind::UnbalancedClass)),
                Some(b']') if !first => break,
                Some(b) => b,
            };
            first = false;
            let lo = if b == b'\\' {
                self.escape()?
            } else {
                ByteClass::singleton(b)
            };
            // Range? Only when the left side was a single byte and a `-` is
            // followed by something other than `]`.
            if lo.len() == 1
                && self.peek() == Some(b'-')
                && self.input.get(self.pos + 1) != Some(&b']')
            {
                self.pos += 1; // consume '-'
                let hi_b = match self.bump() {
                    None => return Err(self.error(RegexErrorKind::UnbalancedClass)),
                    Some(b'\\') => {
                        let c = self.escape()?;
                        if c.len() != 1 {
                            return Err(self.error(RegexErrorKind::BadClassRange));
                        }
                        c.min_byte().expect("single byte")
                    }
                    Some(b) => b,
                };
                let lo_b = lo.min_byte().expect("single byte");
                if lo_b > hi_b {
                    return Err(self.error(RegexErrorKind::BadClassRange));
                }
                class = class.union(&ByteClass::range(lo_b, hi_b));
            } else {
                class = class.union(&lo);
            }
        }
        let class = if negated { class.complement() } else { class };
        Ok(Ast::Class(class))
    }

    /// Parses a POSIX named class `[:name:]` (positioned at the opening
    /// `[`), returning its byte set.
    fn posix_class(&mut self) -> Result<ByteClass, ParseRegexError> {
        let start = self.pos;
        self.pos += 2; // consume "[:"
        let name_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.input[name_start..self.pos])
            .expect("ASCII letters are UTF-8")
            .to_owned();
        if !(self.eat(b':') && self.eat(b']')) {
            self.pos = start;
            return Err(self.error(RegexErrorKind::UnbalancedClass));
        }
        Ok(match name.as_str() {
            "digit" => digit_class(),
            "alpha" => ByteClass::range(b'A', b'Z').union(&ByteClass::range(b'a', b'z')),
            "alnum" => ByteClass::range(b'0', b'9')
                .union(&ByteClass::range(b'A', b'Z'))
                .union(&ByteClass::range(b'a', b'z')),
            "upper" => ByteClass::range(b'A', b'Z'),
            "lower" => ByteClass::range(b'a', b'z'),
            "space" => space_class(),
            "xdigit" => ByteClass::range(b'0', b'9')
                .union(&ByteClass::range(b'A', b'F'))
                .union(&ByteClass::range(b'a', b'f')),
            "punct" => ByteClass::range(b'!', b'/')
                .union(&ByteClass::range(b':', b'@'))
                .union(&ByteClass::range(b'[', b'`'))
                .union(&ByteClass::range(b'{', b'~')),
            "word" => word_class(),
            _ => {
                self.pos = start;
                return Err(self.error(RegexErrorKind::UnbalancedClass));
            }
        })
    }

    /// Parses an escape (the `\` has been consumed) into a byte class.
    fn escape(&mut self) -> Result<ByteClass, ParseRegexError> {
        let b = self
            .bump()
            .ok_or_else(|| self.error(RegexErrorKind::UnexpectedEnd))?;
        Ok(match b {
            b'd' => digit_class(),
            b'D' => digit_class().complement(),
            b'w' => word_class(),
            b'W' => word_class().complement(),
            b's' => space_class(),
            b'S' => space_class().complement(),
            b'n' => ByteClass::singleton(b'\n'),
            b'r' => ByteClass::singleton(b'\r'),
            b't' => ByteClass::singleton(b'\t'),
            b'0' => ByteClass::singleton(0),
            b'x' => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                ByteClass::singleton(hi * 16 + lo)
            }
            b'1'..=b'9' => return Err(self.error(RegexErrorKind::UnsupportedBackreference)),
            // Escaped metacharacters and anything else: the literal byte.
            _ => ByteClass::singleton(b),
        })
    }

    fn hex_digit(&mut self) -> Result<u8, ParseRegexError> {
        let b = self
            .bump()
            .ok_or_else(|| self.error(RegexErrorKind::UnexpectedEnd))?;
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(self.error(RegexErrorKind::MalformedEscape)),
        }
    }
}

/// The `\d` class.
pub fn digit_class() -> ByteClass {
    ByteClass::range(b'0', b'9')
}

/// The `\w` class (`[0-9A-Za-z_]`).
pub fn word_class() -> ByteClass {
    ByteClass::range(b'0', b'9')
        .union(&ByteClass::range(b'A', b'Z'))
        .union(&ByteClass::range(b'a', b'z'))
        .union(&ByteClass::singleton(b'_'))
}

/// The `\s` class (`[ \t\n\r\x0b\x0c]`).
pub fn space_class() -> ByteClass {
    ByteClass::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ast {
        parse(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn parses_literals_and_concat() {
        assert_eq!(p("ab"), Ast::Concat(vec![Ast::byte(b'a'), Ast::byte(b'b')]));
        assert_eq!(p(""), Ast::Empty);
        assert_eq!(p("a"), Ast::byte(b'a'));
    }

    #[test]
    fn parses_alternation_precedence() {
        // ab|c == (ab)|(c), not a(b|c).
        match p("ab|c") {
            Ast::Alt(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[1], Ast::byte(b'c'));
            }
            other => panic!("expected alt, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        assert_eq!(p("a*"), Ast::Star(Box::new(Ast::byte(b'a'))));
        assert_eq!(p("a+"), Ast::Plus(Box::new(Ast::byte(b'a'))));
        assert_eq!(p("a?"), Ast::Optional(Box::new(Ast::byte(b'a'))));
        assert_eq!(
            p("a{2,5}"),
            Ast::Repeat {
                inner: Box::new(Ast::byte(b'a')),
                min: 2,
                max: Some(5)
            }
        );
        assert_eq!(
            p("a{3}"),
            Ast::Repeat {
                inner: Box::new(Ast::byte(b'a')),
                min: 3,
                max: Some(3)
            }
        );
        assert_eq!(
            p("a{2,}"),
            Ast::Repeat {
                inner: Box::new(Ast::byte(b'a')),
                min: 2,
                max: None
            }
        );
    }

    #[test]
    fn literal_brace_is_not_a_bound() {
        assert_eq!(
            p("a{x"),
            Ast::Concat(vec![Ast::byte(b'a'), Ast::byte(b'{'), Ast::byte(b'x')])
        );
    }

    #[test]
    fn parses_classes() {
        assert_eq!(p("[0-9]"), Ast::Class(ByteClass::range(b'0', b'9')));
        assert_eq!(
            p("[abc]"),
            Ast::Class(ByteClass::from_bytes([b'a', b'b', b'c']))
        );
        assert_eq!(p("[\\d]"), Ast::Class(digit_class()));
        // `]` first is a literal.
        assert_eq!(p("[]a]"), Ast::Class(ByteClass::from_bytes([b']', b'a'])));
        // Trailing `-` is a literal.
        assert_eq!(p("[a-]"), Ast::Class(ByteClass::from_bytes([b'a', b'-'])));
    }

    #[test]
    fn parses_posix_classes() {
        assert_eq!(p("[[:digit:]]"), Ast::Class(digit_class()));
        assert_eq!(
            p("[[:digit:]x]"),
            Ast::Class(digit_class().union(&ByteClass::singleton(b'x')))
        );
        match p("[[:alpha:][:digit:]]") {
            Ast::Class(c) => {
                assert!(c.contains(b'q') && c.contains(b'7') && !c.contains(b'_'));
            }
            other => panic!("{other:?}"),
        }
        match p("[^[:space:]]") {
            Ast::Class(c) => {
                assert!(!c.contains(b' ') && c.contains(b'x'));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("[[:bogus:]]").is_err());
        assert!(parse("[[:digit]]").is_err());
        // A bare "[:" outside a class context is not special: `[` opens a
        // class whose first member may be ':'.
        assert_eq!(p("[:a]"), Ast::Class(ByteClass::from_bytes([b':', b'a'])));
    }

    #[test]
    fn parses_negated_class() {
        match p("[^0-9]") {
            Ast::Class(c) => {
                assert!(!c.contains(b'5'));
                assert!(c.contains(b'a'));
                assert!(c.contains(0xff));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn parses_escapes() {
        assert_eq!(p("\\d"), Ast::Class(digit_class()));
        assert_eq!(p("\\."), Ast::byte(b'.'));
        assert_eq!(p("\\x41"), Ast::byte(b'A'));
        assert_eq!(p("\\n"), Ast::byte(b'\n'));
        match p("\\w") {
            Ast::Class(c) => assert!(c.contains(b'_') && c.contains(b'Q') && !c.contains(b'-')),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_anchors_and_dot() {
        assert_eq!(p("^"), Ast::Anchor(Anchor::Start));
        assert_eq!(p("$"), Ast::Anchor(Anchor::End));
        match p(".") {
            Ast::Class(c) => {
                assert!(c.contains(b'a'));
                assert!(!c.contains(b'\n'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_the_papers_filter() {
        // The (faulty) filter from the paper's Figure 1: /[\d]+$/
        let ast = p("[\\d]+$");
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Ast::Plus(_)));
                assert_eq!(parts[1], Ast::Anchor(Anchor::End));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("(?:ab)").is_err());
        assert!(parse("a\\1").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("[ab").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a{3,1}").is_err());
        assert!(parse("[z-a]").is_err());
        assert!(parse("\\x4g").is_err());
    }

    #[test]
    fn error_positions_point_at_offence() {
        let err = parse("ab(?=x)").expect_err("lookahead unsupported");
        assert_eq!(err.pos, 3);
    }

    #[test]
    fn nested_groups() {
        let ast = p("(a(b|c))*");
        match ast {
            Ast::Star(inner) => match *inner {
                Ast::Concat(ref parts) => assert_eq!(parts.len(), 2),
                ref other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
