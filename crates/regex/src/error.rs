//! Error types for regex parsing and compilation.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing a pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegexErrorKind {
    /// The pattern ended in the middle of a construct.
    UnexpectedEnd,
    /// A `(` without matching `)`, or a stray `)`.
    UnbalancedParen,
    /// A `[` without matching `]`.
    UnbalancedClass,
    /// A class range with its endpoints out of order or non-byte endpoints.
    BadClassRange,
    /// A `{n,m}` bound that is malformed or has `m < n`.
    MalformedBound,
    /// A quantifier with nothing to repeat, e.g. a leading `*`.
    DanglingQuantifier,
    /// `(?...)` groups (non-capturing, lookaround, named) are unsupported.
    UnsupportedGroup,
    /// Backreferences (`\1`…`\9`) are not regular and unsupported.
    UnsupportedBackreference,
    /// A malformed escape such as `\xZZ`.
    MalformedEscape,
    /// An anchor (`^`/`$`) in a position the compiler cannot interpret
    /// (e.g. under a star).
    MisplacedAnchor,
}

impl fmt::Display for RegexErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            RegexErrorKind::UnexpectedEnd => "unexpected end of pattern",
            RegexErrorKind::UnbalancedParen => "unbalanced parenthesis",
            RegexErrorKind::UnbalancedClass => "unbalanced character class",
            RegexErrorKind::BadClassRange => "invalid character-class range",
            RegexErrorKind::MalformedBound => "malformed repetition bound",
            RegexErrorKind::DanglingQuantifier => "quantifier with nothing to repeat",
            RegexErrorKind::UnsupportedGroup => "unsupported (?...) group",
            RegexErrorKind::UnsupportedBackreference => "backreferences are not supported",
            RegexErrorKind::MalformedEscape => "malformed escape sequence",
            RegexErrorKind::MisplacedAnchor => "anchor in an uninterpretable position",
        };
        f.write_str(msg)
    }
}

/// A positioned parse or compile error for a regular expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParseRegexError {
    /// Byte offset into the pattern where the error was detected.
    pub pos: usize,
    /// The kind of error.
    pub kind: RegexErrorKind,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.kind, self.pos)
    }
}

impl Error for ParseRegexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = ParseRegexError {
            pos: 7,
            kind: RegexErrorKind::UnbalancedParen,
        };
        let s = e.to_string();
        assert!(s.contains("offset 7"), "got {s}");
        assert!(s.contains("parenthesis"), "got {s}");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(ParseRegexError {
            pos: 0,
            kind: RegexErrorKind::UnexpectedEnd,
        });
    }
}
