//! Abstract syntax for the PCRE-style regular-expression subset.
//!
//! The paper's motivating front end deals with patterns like `/[\d]+$/`
//! taken from PHP `preg_match` calls: character classes, escapes, anchors,
//! alternation, grouping, and the usual quantifiers. Features that would
//! leave the regular languages (backreferences, lookaround) are not
//! representable.

use dprle_automata::ByteClass;
use std::fmt;

/// Position-based anchors. PCRE treats these as zero-width assertions; in
/// the language-theoretic reading used here they select between exact-match
/// and substring-match semantics (see [`crate::Regex::search_language`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Anchor {
    /// `^` — start of subject.
    Start,
    /// `$` — end of subject.
    End,
}

/// A parsed regular expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches any single byte in the class.
    Class(ByteClass),
    /// Matches the alternatives in order: `e₁e₂…`.
    Concat(Vec<Ast>),
    /// Matches any one alternative: `e₁|e₂|…`.
    Alt(Vec<Ast>),
    /// Zero or more repetitions: `e*`.
    Star(Box<Ast>),
    /// One or more repetitions: `e+`.
    Plus(Box<Ast>),
    /// Zero or one occurrence: `e?`.
    Optional(Box<Ast>),
    /// Bounded repetition `e{min}`, `e{min,}`, or `e{min,max}`.
    Repeat {
        /// The repeated expression.
        inner: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
    },
    /// A positional anchor (`^` or `$`).
    Anchor(Anchor),
}

impl Ast {
    /// Convenience constructor for a single literal byte.
    pub fn byte(b: u8) -> Ast {
        Ast::Class(ByteClass::singleton(b))
    }

    /// Convenience constructor for a literal byte string.
    pub fn literal(bytes: &[u8]) -> Ast {
        match bytes.len() {
            0 => Ast::Empty,
            1 => Ast::byte(bytes[0]),
            _ => Ast::Concat(bytes.iter().map(|&b| Ast::byte(b)).collect()),
        }
    }

    /// Whether any anchor occurs anywhere in the expression.
    pub fn has_anchor(&self) -> bool {
        match self {
            Ast::Anchor(_) => true,
            Ast::Empty | Ast::Class(_) => false,
            Ast::Concat(parts) | Ast::Alt(parts) => parts.iter().any(Ast::has_anchor),
            Ast::Star(inner) | Ast::Plus(inner) | Ast::Optional(inner) => inner.has_anchor(),
            Ast::Repeat { inner, .. } => inner.has_anchor(),
        }
    }
}

impl fmt::Display for Ast {
    /// Re-renders the expression in (parenthesized) regex syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Empty => Ok(()),
            Ast::Class(c) => write!(f, "{c}"),
            Ast::Concat(parts) => {
                for p in parts {
                    match p {
                        Ast::Alt(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Ast::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Ast::Star(inner) => write!(f, "({inner})*"),
            Ast::Plus(inner) => write!(f, "({inner})+"),
            Ast::Optional(inner) => write!(f, "({inner})?"),
            Ast::Repeat {
                inner,
                min,
                max: Some(max),
            } if min == max => {
                write!(f, "({inner}){{{min}}}")
            }
            Ast::Repeat {
                inner,
                min,
                max: Some(max),
            } => write!(f, "({inner}){{{min},{max}}}"),
            Ast::Repeat {
                inner,
                min,
                max: None,
            } => write!(f, "({inner}){{{min},}}"),
            Ast::Anchor(Anchor::Start) => write!(f, "^"),
            Ast::Anchor(Anchor::End) => write!(f, "$"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_shapes() {
        assert_eq!(Ast::literal(b""), Ast::Empty);
        assert_eq!(Ast::literal(b"a"), Ast::byte(b'a'));
        match Ast::literal(b"ab") {
            Ast::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn anchor_detection() {
        assert!(Ast::Anchor(Anchor::Start).has_anchor());
        assert!(Ast::Concat(vec![Ast::byte(b'a'), Ast::Anchor(Anchor::End)]).has_anchor());
        assert!(!Ast::Star(Box::new(Ast::byte(b'a'))).has_anchor());
        assert!(Ast::Repeat {
            inner: Box::new(Ast::Anchor(Anchor::End)),
            min: 0,
            max: None
        }
        .has_anchor());
    }

    #[test]
    fn display_roundtrips_visually() {
        let ast = Ast::Alt(vec![
            Ast::literal(b"ab"),
            Ast::Star(Box::new(Ast::byte(b'c'))),
        ]);
        assert_eq!(ast.to_string(), "ab|(c)*");
        let rep = Ast::Repeat {
            inner: Box::new(Ast::byte(b'x')),
            min: 2,
            max: Some(4),
        };
        assert_eq!(rep.to_string(), "(x){2,4}");
        let exact = Ast::Repeat {
            inner: Box::new(Ast::byte(b'x')),
            min: 3,
            max: Some(3),
        };
        assert_eq!(exact.to_string(), "(x){3}");
    }
}
