//! Crate-level semantic tests for the regex front end: search semantics,
//! real-world filter patterns, and conversion round-trips through the
//! public API only.

use dprle_regex::{
    compile_exact, compile_search, nfa_to_regex, oracle_is_full_match, parse, Regex,
};

/// Search semantics is exactly "some substring matches exactly": for an
/// anchor-free pattern, `search(re)` accepts `w` iff some `w[i..j]` is in
/// `exact(re)`.
#[test]
fn search_is_substring_of_exact() {
    let patterns = ["ab", "a+b", "(ab|ba)c?", "[0-9]{2}", "x[yz]*x"];
    let words: Vec<Vec<u8>> = {
        let alphabet = [b'a', b'b', b'c', b'x'];
        let mut out: Vec<Vec<u8>> = vec![Vec::new()];
        let mut layer: Vec<Vec<u8>> = vec![Vec::new()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for w in &layer {
                for &b in &alphabet {
                    let mut v = w.clone();
                    v.push(b);
                    next.push(v);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    };
    for pattern in patterns {
        let ast = parse(pattern).expect("parses");
        let exact = compile_exact(&ast).expect("compiles");
        let search = compile_search(&ast).expect("compiles");
        for w in &words {
            let some_substring =
                (0..=w.len()).any(|i| (i..=w.len()).any(|j| exact.contains(&w[i..j])));
            assert_eq!(
                search.contains(w),
                some_substring,
                "pattern {pattern} word {w:?}"
            );
        }
    }
}

/// Real-world validation patterns behave like their PHP counterparts.
#[test]
fn realistic_filters() {
    let email = Regex::new("^[a-z0-9._]+@[a-z0-9-]+\\.[a-z]{2,4}$").expect("compiles");
    assert!(email.is_match(b"alice@example.com"));
    assert!(email.is_match(b"a.b_c@x-y.org"));
    assert!(!email.is_match(b"alice@example"));
    assert!(!email.is_match(b"alice at example.com"));

    let hexcolor = Regex::new("^#?[[:xdigit:]]{6}$").expect("compiles");
    assert!(hexcolor.is_match(b"#a1B2c3"));
    assert!(hexcolor.is_match(b"ffffff"));
    assert!(!hexcolor.is_match(b"#xyzxyz"));

    let ipv4ish = Regex::new("^[0-9]{1,3}(\\.[0-9]{1,3}){3}$").expect("compiles");
    assert!(ipv4ish.is_match(b"192.168.0.1"));
    assert!(!ipv4ish.is_match(b"192.168.0"));

    let phone = Regex::new("^\\+?[0-9][0-9 -]{6,14}$").expect("compiles");
    assert!(phone.is_match(b"+1 555-867-5309"));
    assert!(!phone.is_match(b"call me"));
}

/// The paper's faulty filter vs the fixed filter, as language inclusion.
#[test]
fn faulty_filter_is_strictly_weaker() {
    let faulty = Regex::new("[\\d]+$").expect("compiles");
    let fixed = Regex::new("^[\\d]+$").expect("compiles");
    assert!(dprle_automata::is_subset(
        fixed.search_language(),
        faulty.search_language()
    ));
    assert!(!dprle_automata::is_subset(
        faulty.search_language(),
        fixed.search_language()
    ));
    // The gap is exactly the exploit space: a witness in faulty \ fixed.
    let gap =
        dprle_automata::analysis::difference(faulty.search_language(), fixed.search_language());
    let w = gap.shortest_member().expect("the filters differ");
    assert!(faulty.is_match(&w));
    assert!(!fixed.is_match(&w));
}

/// AST → NFA → AST round-trips preserve the language for every pattern in
/// a mixed pile (via the exact compiler and the state-elimination
/// converter).
#[test]
fn regex_nfa_regex_roundtrip() {
    let patterns = [
        "abc",
        "a|b|c",
        "(ab)*",
        "a+b?c{2,3}",
        "[0-9a-f]+",
        "x(y|zz)*x",
        "(a|b)(c|d)(e|f)",
    ];
    for pattern in patterns {
        let ast = parse(pattern).expect("parses");
        let compiled = compile_exact(&ast).expect("compiles");
        let back = nfa_to_regex(&compiled, 100_000).expect("nonempty");
        let recompiled = compile_exact(&back).expect("recompiles");
        assert!(
            dprle_automata::equivalent(&compiled, &recompiled),
            "pattern {pattern} → {back}"
        );
    }
}

/// The oracle agrees with the compiled machines for the paper's patterns.
#[test]
fn oracle_agrees_on_paper_patterns() {
    for pattern in ["[\\d]+", "(xx)+y", "x*y", "x(yy)+", "(yy)*z", "op{5}q*"] {
        let ast = parse(pattern).expect("parses");
        let compiled = compile_exact(&ast).expect("compiles");
        for w in [
            &b""[..],
            b"x",
            b"xx",
            b"xxy",
            b"xy",
            b"y",
            b"123",
            b"op",
            b"oppppp",
        ] {
            assert_eq!(
                oracle_is_full_match(&ast, w),
                compiled.contains(w),
                "pattern {pattern} word {w:?}"
            );
        }
    }
}
