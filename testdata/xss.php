<?php
// Reflected XSS: the message is echoed without encoding.
$msg = $_GET['msg'];
if ($msg == "") {
    exit;
}
echo "<div class=msg>" . $msg . "</div>";
