; The paper's motivating system in SMT-LIB 2.6 strings syntax.
(set-logic QF_S)
(declare-const v1 String)
(assert (str.in_re v1 (re.++ re.all (re.+ (re.range "0" "9")))))
(assert (str.in_re (str.++ "nid_" v1)
                   (re.++ re.all (str.to_re "'") re.all)))
(check-sat)
(get-model)
