<?php
// Adapted from Utopia News Pro (the paper's Figure 1).
$newsid = $_POST['posted_newsid'];
if (!preg_match('/[\d]+$/', $newsid)) {
    echo 'Invalid article news ID.';
    exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
