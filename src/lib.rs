//! # dprle — A Decision Procedure for Subset Constraints over Regular Languages
//!
//! A from-scratch Rust reproduction of Hooimeijer & Weimer (PLDI 2009):
//! a solver for systems of equations over regular-language variables with
//! concatenation and subset constraints, together with the automata
//! substrate, regex front end, symbolic-execution-based SQL-injection
//! analysis, and synthetic evaluation corpus the paper's evaluation needs.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! names and hosts the runnable examples and cross-crate integration tests.
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`automata`] | `dprle-automata` | byte-class ε-NFAs, DFA ops, minimization, quotients |
//! | [`regex`] | `dprle-regex` | PCRE-subset parser + Thompson compiler |
//! | [`core`] | `dprle-core` | the decision procedure (CI, dependency graphs, worklist, gci) |
//! | [`lang`] | `dprle-lang` | PHP-like IR, CFGs, symbolic execution, SQLI analysis |
//! | [`corpus`] | `dprle-corpus` | synthetic eve/utopia/warp evaluation corpus |
//!
//! ## Quickstart
//!
//! ```
//! use dprle::core::{solve, Expr, SolveOptions, System};
//!
//! // v1 ⊆ (xx)+y and v1 ⊆ x*y  (paper §3.1.1)
//! let mut sys = System::new();
//! let v1 = sys.var("v1");
//! let a = sys.constant_regex_exact("a", "(xx)+y")?;
//! let b = sys.constant_regex_exact("b", "x*y")?;
//! sys.require(Expr::Var(v1), a);
//! sys.require(Expr::Var(v1), b);
//!
//! let solution = solve(&sys, &SolveOptions::default());
//! assert!(solution.first().expect("sat").get(v1).expect("v1").contains(b"xxy"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dprle_automata as automata;
pub use dprle_core as core;
pub use dprle_corpus as corpus;
pub use dprle_lang as lang;
pub use dprle_regex as regex;
