//! Quickstart: build a constraint system, solve it, inspect the answer.
//!
//! Solves the paper's §3.1.1 examples:
//!
//! 1. `v1 ⊆ (xx)+y, v1 ⊆ x*y` — a single maximal assignment.
//! 2. `v1 ⊆ x(yy)+, v2 ⊆ (yy)*z, v1·v2 ⊆ xyyz|xyyyyz` — two inherently
//!    disjunctive assignments.
//!
//! Run with: `cargo run --example quickstart`

use dprle::core::{solve, Expr, SolveOptions, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Example 1: plain intersection ---------------------------------
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let a = sys.constant_regex_exact("a", "(xx)+y")?;
    let b = sys.constant_regex_exact("b", "x*y")?;
    sys.require(Expr::Var(v1), a);
    sys.require(Expr::Var(v1), b);

    println!("System 1:\n{sys}");
    let solution = solve(&sys, &SolveOptions::default());
    for (i, assignment) in solution.assignments().iter().enumerate() {
        println!("assignment {}:\n{}\n", i + 1, assignment.display(&sys));
    }

    // --- Example 2: disjunctive solutions ------------------------------
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let c1 = sys.constant_regex_exact("c1", "x(yy)+")?;
    let c2 = sys.constant_regex_exact("c2", "(yy)*z")?;
    let c3 = sys.constant_regex_exact("c3", "xyyz|xyyyyz")?;
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);

    println!("System 2:\n{sys}");
    let solution = solve(&sys, &SolveOptions::default());
    println!("{} disjunctive assignments:", solution.assignments().len());
    for (i, assignment) in solution.assignments().iter().enumerate() {
        println!("assignment {}:\n{}\n", i + 1, assignment.display(&sys));
    }
    Ok(())
}
