//! Cross-site scripting, the paper's other motivating vulnerability class
//! (§1: SQL injection and XSS "accounted for 35.5% of reported
//! vulnerabilities in 2006").
//!
//! Analyzes a reflected-XSS page: the `echo` sink becomes the
//! security-sensitive output, and the policy language is "the emitted HTML
//! contains a `<script` opener". The exploit is then replayed concretely.
//!
//! Run with: `cargo run --example xss_audit`

use dprle::core::SolveOptions;
use dprle::lang::symex::{SinkKind, SymexOptions};
use dprle::lang::{analyze_sinks, parse_php, run, Policy};
use std::collections::HashMap;

const PAGE: &str = r#"<?php
$msg = $_GET['msg'];
if ($msg == "") {
    echo "nothing to say";
    exit;
}
echo "<div class=msg>" . $msg . "</div>";
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_php("guestbook", PAGE)?;
    let symex = SymexOptions {
        track_echo: true,
        ..Default::default()
    };
    let report = analyze_sinks(
        &program,
        &Policy::xss_script_tag(),
        &symex,
        &SolveOptions::default(),
        Some(SinkKind::Echo),
    )?;

    for finding in &report.findings {
        println!("XSS at echo sink #{}:", finding.sink_index);
        for (input, value) in &finding.witnesses {
            println!("  {} = {:?}", input, String::from_utf8_lossy(value));
        }
        // Replay: run the page on the exploit and show the emitted HTML.
        let inputs: HashMap<String, Vec<u8>> = finding
            .witnesses
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let result = run(&program, &inputs)?;
        for html in &result.echoes {
            println!("  emitted: {:?}", String::from_utf8_lossy(html));
        }
    }

    // The encoded variant is safe: a guard rejects angle brackets.
    let fixed = PAGE.replace(
        "if ($msg == \"\") {",
        "if (preg_match('/[<>]/', $msg)) { exit; }\nif ($msg == \"\") {",
    );
    let program = parse_php("guestbook_fixed", &fixed)?;
    let report = analyze_sinks(
        &program,
        &Policy::xss_script_tag(),
        &symex,
        &SolveOptions::default(),
        Some(SinkKind::Echo),
    )?;
    if report.findings.is_empty() {
        println!(
            "patched page: SAFE ({} echo sink(s) proven clean)",
            report.total_sinks
        );
    }
    Ok(())
}
