//! The paper's motivating example, end to end (Figure 1 / §2 / §4).
//!
//! Encodes the vulnerable Utopia News Pro fragment as an IR program, runs
//! the symbolic-execution front end, solves the resulting constraint
//! system, and prints an HTTP parameter value that exploits the SQL
//! injection. Then patches the filter and shows the solver proving the
//! patched code safe.
//!
//! Run with: `cargo run --example sql_injection`

use dprle::core::SolveOptions;
use dprle::lang::symex::SymexOptions;
use dprle::lang::{analyze, Cond, Policy, Program, Stmt, StringExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Program::figure1();
    println!("Analyzing the vulnerable program (faulty filter /[\\d]+$/)...");
    let report = analyze(
        &program,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )?;
    for finding in &report.findings {
        println!("VULNERABLE: {}", finding.program);
        println!("  query: {}", finding.query);
        println!("  constraints |C| = {}", finding.num_constraints);
        for (input, value) in &finding.witnesses {
            println!(
                "  exploit: {} = {:?}",
                input,
                String::from_utf8_lossy(value)
            );
        }
    }

    // Patch line 2 with the properly anchored filter and re-analyze.
    let mut fixed = program;
    fixed.name = "utopia_figure1_fixed".to_owned();
    let Stmt::If { cond, .. } = &mut fixed.stmts[1] else {
        unreachable!("figure 1 shape");
    };
    *cond = Cond::PregMatch {
        pattern: "^[\\d]+$".to_owned(),
        subject: StringExpr::var("newsid"),
    }
    .negate();

    println!("\nAnalyzing the patched program (filter /^[\\d]+$/)...");
    let report = analyze(
        &fixed,
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )?;
    if report.findings.is_empty() {
        println!(
            "SAFE: the exploit language is empty for all {} sink(s) — no bug.",
            report.total_sinks
        );
    }
    Ok(())
}
