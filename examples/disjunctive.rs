//! Shared variables across concatenations (paper §3.4.3, Figures 9–10).
//!
//! The system
//!
//! ```text
//! va ⊆ o(pp)+     vb ⊆ p*(qq)+     vc ⊆ q*r
//! va·vb ⊆ op{5}q*      vb·vc ⊆ p*q{4}r
//! ```
//!
//! forms a single CI-group in which `vb` participates in *both*
//! concatenations, making them mutually dependent. The solver must find
//! assignments to `va` and `vc` for which a single `vb` satisfies both
//! constraints simultaneously.
//!
//! Run with: `cargo run --example disjunctive`

use dprle::core::{satisfies_system, solve, Expr, SolveOptions, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let ca = sys.constant_regex_exact("ca", "o(pp)+")?;
    let cb = sys.constant_regex_exact("cb", "p*(qq)+")?;
    let cc = sys.constant_regex_exact("cc", "q*r")?;
    let c1 = sys.constant_regex_exact("c1", "op{5}q*")?;
    let c2 = sys.constant_regex_exact("c2", "p*q{4}r")?;
    sys.require(Expr::Var(va), ca);
    sys.require(Expr::Var(vb), cb);
    sys.require(Expr::Var(vc), cc);
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

    println!("System (Figure 9):\n{sys}");
    let solution = solve(&sys, &SolveOptions::default());
    println!("{} disjunctive assignments:", solution.assignments().len());
    for (i, assignment) in solution.assignments().iter().enumerate() {
        assert!(
            satisfies_system(&sys, assignment),
            "solver output must satisfy"
        );
        println!("assignment {}:\n{}\n", i + 1, assignment.display(&sys));
    }
    Ok(())
}
