//! Path feasibility for directed testing (paper §1 and §5).
//!
//! The paper motivates the decision procedure for concolic testing /
//! whitebox fuzzing: "symbolic execution … requires decision procedures
//! for strongest-postcondition calculations as well as ruling out
//! infeasible paths", and contrasts with Wassermann et al.'s incomplete
//! reverser, which "cannot be used to soundly rule out infeasible program
//! paths". This example shows both directions on string-constrained
//! branches:
//!
//! * a feasible path: the solver produces an input driving execution down
//!   it;
//! * an infeasible path (two contradictory `preg_match` outcomes on the
//!   same value): the solver returns *unsat*, soundly pruning the path.
//!
//! Run with: `cargo run --example path_feasibility`

use dprle::core::{solve, Expr, SolveOptions, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Path 1 (feasible): the input matched /^[a-z]+/ AND matched /x$/.
    // Branch conditions become language constraints on the same variable.
    let mut sys = System::new();
    let input = sys.var("input");
    let starts_lower = sys.constant_regex("starts_lower", "^[a-z]+")?;
    let ends_x = sys.constant_regex("ends_x", "x$")?;
    sys.require(Expr::Var(input), starts_lower);
    sys.require(Expr::Var(input), ends_x);
    match solve(&sys, &SolveOptions::default()).first() {
        Some(assignment) => {
            let w = assignment.witness(input).expect("nonempty");
            println!(
                "path [match ^[a-z]+, match x$] is FEASIBLE, e.g. input = {:?}",
                String::from_utf8_lossy(&w)
            );
        }
        None => unreachable!("this path is feasible"),
    }

    // Path 2 (infeasible): the same value both matched /^[0-9]+$/ and
    // FAILED to match /[0-9]/ — contradictory.
    let mut sys = System::new();
    let input = sys.var("input");
    let all_digits = sys.constant_regex("all_digits", "^[0-9]+$")?;
    let digitless = {
        // The false branch of preg_match(/[0-9]/, v): v has no digit.
        let has_digit = dprle::regex::Regex::new("[0-9]")?;
        let none = dprle::automata::complement(has_digit.search_language());
        sys.constant("digitless", none)
    };
    sys.require(Expr::Var(input), all_digits);
    sys.require(Expr::Var(input), digitless);
    let solution = solve(&sys, &SolveOptions::default());
    if !solution.is_sat() {
        println!("path [match ^[0-9]+$, fail [0-9]] is INFEASIBLE: soundly pruned");
    } else {
        unreachable!("this path is contradictory");
    }

    // Path 3 (strongest postcondition): after $q = "SELECT " . input with
    // the feasible-path constraints, what can $q look like? Ask for the
    // language of q's possible values that are dangerous.
    let mut sys = System::new();
    let input = sys.var("input");
    let filter = sys.constant_regex("filter", "^[a-z' ]+$")?; // letters, quotes, spaces
    let select = sys.constant("select", dprle::automata::Nfa::literal(b"SELECT "));
    let unsafe_q = sys.constant_regex("unsafe", "'")?;
    sys.require(Expr::Var(input), filter);
    sys.require(Expr::Const(select).concat(Expr::Var(input)), unsafe_q);
    match solve(&sys, &SolveOptions::default()).first() {
        Some(assignment) => {
            let w = assignment.witness(input).expect("nonempty");
            println!(
                "dangerous-query postcondition reachable, e.g. input = {:?}",
                String::from_utf8_lossy(&w)
            );
        }
        None => println!("no dangerous query reachable through the filter"),
    }
    Ok(())
}
