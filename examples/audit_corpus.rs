//! Audit the full synthetic corpus (the paper's §4 evaluation, in small).
//!
//! Generates the three applications of Figure 11 (eve / utopia / warp),
//! runs the SQL-injection analysis over every file, and prints a per-app
//! summary plus one exploit per vulnerable file. The full timed Figure 12
//! table lives in the bench harness (`cargo run -p dprle-bench --bin
//! fig12 --release`); this example favors readability over timing.
//!
//! Run with: `cargo run --release --example audit_corpus`

use dprle::core::SolveOptions;
use dprle::corpus::generate_corpus;
use dprle::lang::symex::SymexOptions;
use dprle::lang::{analyze, Policy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = Policy::sql_quote();
    let symex = SymexOptions::default();
    let solve = SolveOptions::default();
    for app in generate_corpus() {
        println!(
            "== {} {} ({} files, ~{} statements)",
            app.spec.name,
            app.spec.version,
            app.files.len(),
            app.total_statements()
        );
        let mut vulnerable = 0usize;
        for file in &app.files {
            let report = analyze(file, &policy, &symex, &solve)?;
            if report.findings.is_empty() {
                continue;
            }
            vulnerable += 1;
            let finding = &report.findings[0];
            let exploit = finding
                .witnesses
                .iter()
                .map(|(k, v)| format!("{k}={:?}", String::from_utf8_lossy(v)))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  {:<12} |C|={:<4} exploit: {}",
                file.name, finding.num_constraints, exploit
            );
        }
        println!(
            "  -> {}/{} files vulnerable (paper: {})",
            vulnerable,
            app.files.len(),
            app.spec.vulnerable
        );
    }
    Ok(())
}
