//! Completeness of the full solver (the RMA-level analogue of the paper's
//! All-Solutions theorem): every *pointwise* solution — a tuple of concrete
//! strings satisfying the system — must be covered by some returned
//! disjunctive assignment.
//!
//! These tests brute-force all short string tuples over a two-letter
//! alphabet, check them against the constraints directly, and demand that
//! each satisfying tuple appears inside some assignment. This catches
//! missing disjuncts that soundness-only tests (everything returned
//! satisfies) cannot.

use dprle::automata::generate::{random_nonempty_nfa, RandomNfaConfig};
use dprle::automata::Nfa;
use dprle::core::{solve, Expr, Solution, SolveOptions, System};
use proptest::prelude::*;

const AB: &[u8] = b"ab";
const MAX_LEN: usize = 3;

fn words() -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = vec![Vec::new()];
    let mut layer: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..MAX_LEN {
        let mut next = Vec::new();
        for w in &layer {
            for &b in AB {
                let mut v = w.clone();
                v.push(b);
                next.push(v);
            }
        }
        out.extend(next.iter().cloned());
        layer = next;
    }
    out
}

fn machine(seed: u64) -> Nfa {
    let cfg = RandomNfaConfig {
        states: 4,
        edges_per_state: 1.7,
        eps_per_state: 0.2,
        alphabet: AB.to_vec(),
        final_probability: 0.3,
    };
    random_nonempty_nfa(seed, &cfg)
}

/// Solver options with disjunct caps lifted (completeness needs every
/// combination).
fn uncapped() -> SolveOptions {
    let mut options = SolveOptions::default();
    options.gci.max_disjuncts = None;
    options.max_assignments = None;
    options
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CI shape: v1 ⊆ c1, v2 ⊆ c2, v1·v2 ⊆ c3.
    #[test]
    fn ci_shape_covers_every_pointwise_solution(seed in any::<u64>()) {
        let c1m = machine(seed.wrapping_mul(3));
        let c2m = machine(seed.wrapping_mul(3) + 1);
        let c3m = machine(seed.wrapping_mul(3) + 2);
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let c1 = sys.constant("c1", c1m.clone());
        let c2 = sys.constant("c2", c2m.clone());
        let c3 = sys.constant("c3", c3m.clone());
        sys.require(Expr::Var(v1), c1);
        sys.require(Expr::Var(v2), c2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);

        let solution = solve(&sys, &uncapped());
        let words = words();
        for w1 in &words {
            if !c1m.contains(w1) {
                continue;
            }
            for w2 in &words {
                if !c2m.contains(w2) {
                    continue;
                }
                let mut cat = w1.clone();
                cat.extend_from_slice(w2);
                if !c3m.contains(&cat) {
                    continue;
                }
                // (w1, w2) satisfies pointwise: some assignment covers it.
                let covered = solution.assignments().iter().any(|a| {
                    a.get(v1).is_some_and(|m| m.contains(w1))
                        && a.get(v2).is_some_and(|m| m.contains(w2))
                });
                prop_assert!(
                    covered,
                    "tuple ({:?}, {:?}) satisfies but is uncovered (seed {seed})",
                    w1,
                    w2
                );
            }
        }
    }

    /// Figure 9 shape: va·vb ⊆ c1, vb·vc ⊆ c2 (shared middle variable).
    #[test]
    fn shared_variable_shape_covers_every_pointwise_solution(seed in any::<u64>()) {
        let c1m = machine(seed.wrapping_mul(5));
        let c2m = machine(seed.wrapping_mul(5) + 1);
        let mut sys = System::new();
        let va = sys.var("va");
        let vb = sys.var("vb");
        let vc = sys.var("vc");
        let c1 = sys.constant("c1", c1m.clone());
        let c2 = sys.constant("c2", c2m.clone());
        sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
        sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

        let solution = solve(&sys, &uncapped());
        let words = words();
        // Keep the cube small: words up to length 2 for the triple.
        let short: Vec<&Vec<u8>> = words.iter().filter(|w| w.len() <= 2).collect();
        for wa in &short {
            for wb in &short {
                let mut ab = (*wa).clone();
                ab.extend_from_slice(wb);
                if !c1m.contains(&ab) {
                    continue;
                }
                for wc in &short {
                    let mut bc = (*wb).clone();
                    bc.extend_from_slice(wc);
                    if !c2m.contains(&bc) {
                        continue;
                    }
                    let covered = solution.assignments().iter().any(|a| {
                        a.get(va).is_some_and(|m| m.contains(wa))
                            && a.get(vb).is_some_and(|m| m.contains(wb))
                            && a.get(vc).is_some_and(|m| m.contains(wc))
                    });
                    prop_assert!(
                        covered,
                        "triple ({:?},{:?},{:?}) satisfies but is uncovered (seed {seed})",
                        wa,
                        wb,
                        wc
                    );
                }
            }
        }
    }

    /// Plain-intersection shape: the unique maximal assignment covers every
    /// satisfying word.
    #[test]
    fn intersection_shape_is_exactly_the_intersection(seed in any::<u64>()) {
        let c1m = machine(seed.wrapping_mul(7));
        let c2m = machine(seed.wrapping_mul(7) + 1);
        let mut sys = System::new();
        let v = sys.var("v");
        let c1 = sys.constant("c1", c1m.clone());
        let c2 = sys.constant("c2", c2m.clone());
        sys.require(Expr::Var(v), c1);
        sys.require(Expr::Var(v), c2);
        match solve(&sys, &uncapped()) {
            Solution::Unsat => {
                // Then no word satisfies both.
                for w in words() {
                    prop_assert!(!(c1m.contains(&w) && c2m.contains(&w)));
                }
            }
            Solution::Assignments(assignments) => {
                prop_assert_eq!(assignments.len(), 1);
                let lang = assignments[0].get(v).expect("assigned");
                for w in words() {
                    prop_assert_eq!(
                        lang.contains(&w),
                        c1m.contains(&w) && c2m.contains(&w),
                        "word {:?}",
                        &w
                    );
                }
            }
        }
    }
}
