//! Three-way differential oracle: the eager, antichain, and derivative
//! inclusion engines — plus the cost-predicted `auto` selector that
//! routes among them — must be observationally identical on every query
//! the solver can issue, and must obey the algebraic laws of language
//! inclusion no matter which engine answers.
//!
//! This file extends `inclusion_differential.rs` (the original two-engine
//! harness) along three axes:
//!
//! 1. **Agreement**: all concrete engines and `auto` agree on subset /
//!    equivalence / intersection-emptiness verdicts, counterexample
//!    presence, and witness length, on random NFA pairs and every
//!    `corpus::scaling` generator; whole solve runs agree on solutions,
//!    unsat cores, and engine-independent stats.
//! 2. **Budgeted aborts**: under any macrostate cap, an engine either
//!    decides with the unbudgeted verdict or aborts with a well-formed
//!    partial-cost report — no engine trades correctness for budget
//!    (the paths the CLI surfaces as exit code 3).
//! 3. **Metamorphic laws**: transitivity, intersection lower bounds,
//!    reversal, and complement identities hold per engine — an oracle
//!    that needs no reference implementation at all.

use dprle::automata::generate::{random_nfa, RandomNfaConfig};
use dprle::automata::{
    dfa, inclusion_engine, ops, EngineKind, InclusionAbort, InclusionEngine, InclusionLimits,
    LangStore, Nfa,
};
use dprle::core::{
    solve_traced, try_solve_traced, unsat_core, Budget, BudgetKind, Expr, Solution, SolveOptions,
    SolveStats, System, Tracer,
};
use dprle::corpus::scaling::{
    ci_instance, ci_instance_dense, ci_instance_modular, multi_group_system, nested_system,
    random_system, RandomSystemConfig,
};
use proptest::prelude::*;

#[path = "common/inclusion_oracle.rs"]
mod oracle;

fn cfg() -> RandomNfaConfig {
    RandomNfaConfig {
        states: 6,
        edges_per_state: 2.0,
        eps_per_state: 0.4,
        alphabet: vec![b'a', b'b'],
        final_probability: 0.3,
    }
}

fn m(seed: u64) -> Nfa {
    random_nfa(seed, &cfg())
}

/// The concrete engines plus the `auto` selector — `auto` must agree not
/// because it computes anything itself, but because whichever engine the
/// cost model routes to is itself correct; running it through the same
/// oracle pins the routing seam.
fn all_engines() -> [&'static dyn InclusionEngine; 4] {
    [
        inclusion_engine(EngineKind::Eager),
        inclusion_engine(EngineKind::Antichain),
        inclusion_engine(EngineKind::Derivative),
        inclusion_engine(EngineKind::Auto),
    ]
}

/// Asserts all trait queries agree across all four engines on `(a, b)`.
fn assert_queries_agree(a: &Nfa, b: &Nfa) {
    let engines = all_engines();
    let reference = engines[0];
    for e in &engines[1..] {
        assert_eq!(
            reference.is_subset(a, b),
            e.is_subset(a, b),
            "subset verdicts diverge ({})",
            e.kind()
        );
        assert_eq!(
            reference.equivalent(a, b),
            e.equivalent(a, b),
            "equivalence verdicts diverge ({})",
            e.kind()
        );
        assert_eq!(
            reference.intersection_empty(a, b),
            e.intersection_empty(a, b),
            "intersection-emptiness verdicts diverge ({})",
            e.kind()
        );
    }
    oracle::assert_counterexamples_consistent(a, b, &engines);
}

/// Budgeted-abort agreement: under any macrostate cap an engine either
/// *decides* — in which case its verdict must equal the unbudgeted one —
/// or aborts with a partial-cost report that respects the cap. Caps are
/// swept from 1 up through each engine's own measured cost (which, per
/// the `try_*` contract, always suffices to decide).
fn assert_budgeted_aborts_agree(a: &Nfa, b: &Nfa) {
    for e in all_engines() {
        let (truth, full_cost) = e.is_subset_costed(a, b);
        let caps = [1, full_cost.macrostates / 2, full_cost.macrostates];
        for cap in caps.into_iter().filter(|c| *c > 0) {
            let limits = InclusionLimits {
                max_macrostates: Some(cap),
                deadline: None,
            };
            match e.try_subset(a, b, &limits) {
                Ok((verdict, cost)) => {
                    assert_eq!(
                        verdict,
                        truth,
                        "{}: budget cap {cap} changed the verdict",
                        e.kind()
                    );
                    assert!(
                        cost.macrostates <= full_cost.macrostates,
                        "{}: budgeted run did more work than unbudgeted",
                        e.kind()
                    );
                }
                Err(InclusionAbort::MacrostateCap { limit, cost }) => {
                    assert_eq!(limit, cap, "{}: abort reports foreign cap", e.kind());
                    assert!(
                        cost.macrostates <= cap,
                        "{}: partial work exceeds the cap it tripped",
                        e.kind()
                    );
                }
                Err(InclusionAbort::Deadline { .. }) => {
                    panic!("{}: no deadline was set", e.kind())
                }
            }
        }
        // An engine always fits its own measured budget.
        let limits = InclusionLimits {
            max_macrostates: Some(full_cost.macrostates.max(1)),
            deadline: None,
        };
        let (verdict, _) = e
            .try_subset(a, b, &limits)
            .unwrap_or_else(|_| panic!("{}: must fit its own measured cost", e.kind()));
        assert_eq!(verdict, truth);
    }
}

/// Solves `system` under `kind` and renders the comparable facets (same
/// shape as `inclusion_differential.rs`): one fingerprint line per
/// assignment (or `UNSAT`), the unsat core, and the stats with the
/// engine's own work counter zeroed.
fn solve_facets(
    system: &System,
    kind: EngineKind,
) -> (Vec<String>, Option<Vec<usize>>, SolveStats) {
    let options = SolveOptions {
        inclusion_engine: kind,
        ..SolveOptions::default()
    };
    let store = LangStore::interning(options.interning);
    let (solution, mut stats) = solve_traced(system, &options, &store, &Tracer::disabled());
    let (lines, core) = match &solution {
        Solution::Unsat => (
            vec!["UNSAT".to_owned()],
            unsat_core(system, &options).map(|c| c.indices),
        ),
        Solution::Assignments(list) => (
            list.iter()
                .map(|a| {
                    system
                        .var_ids()
                        .map(|v| {
                            a.get(v)
                                .map(|l| format!("{:?}", l.fingerprint()))
                                .unwrap_or_else(|| "<unassigned>".to_owned())
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect(),
            None,
        ),
    };
    stats.inclusion_macrostates = 0;
    (lines, core, stats)
}

/// Asserts whole solve runs agree between the default engine and the two
/// kinds this file introduces (the eager×antichain leg is
/// `inclusion_differential.rs`'s job). Each run rebuilds the system so
/// one engine's warmed fingerprint caches cannot serve another's lookups
/// (see `inclusion_differential.rs`).
fn assert_solves_agree(build: impl Fn() -> System, label: &str) {
    let reference = solve_facets(&build(), EngineKind::default());
    for kind in [EngineKind::Derivative, EngineKind::Auto] {
        let run = solve_facets(&build(), kind);
        assert_eq!(reference.0, run.0, "{label}/{kind}: solutions diverge");
        assert_eq!(reference.1, run.1, "{label}/{kind}: unsat cores diverge");
        assert_eq!(
            reference.2, run.2,
            "{label}/{kind}: stats diverge (inclusion-macrostates excluded)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four queries agree across all four engines on random NFA
    /// pairs, including same-seed (equal-language) pairs.
    #[test]
    fn engines_agree_on_random_nfa_pairs(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        assert_queries_agree(&a, &b);
        assert_queries_agree(&b, &a);
        assert_queries_agree(&a, &m(s)); // identical language both sides
    }

    /// All ordered pairs drawn from every NFA-triple scaling generator
    /// agree, across the q window the solver benchmarks use.
    #[test]
    fn engines_agree_on_scaling_nfa_generators(s in any::<u64>()) {
        let q = 3 + (s % 5) as usize;
        for (c1, c2, c3) in [ci_instance(q), ci_instance_dense(q), ci_instance_modular(q)] {
            let machines = [&c1, &c2, &c3];
            for a in machines {
                for b in machines {
                    assert_queries_agree(a, b);
                }
            }
        }
    }

    /// No engine trades correctness for budget on random pairs.
    #[test]
    fn budgeted_aborts_agree_on_random_nfa_pairs(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        assert_budgeted_aborts_agree(&a, &b);
    }

    /// ... nor on the scaling generators whose blowups budgets exist for.
    #[test]
    fn budgeted_aborts_agree_on_scaling_generators(s in any::<u64>()) {
        let q = 3 + (s % 4) as usize;
        let (c1, c2, c3) = ci_instance_modular(q);
        for a in [&c1, &c2, &c3] {
            for b in [&c1, &c2, &c3] {
                assert_budgeted_aborts_agree(a, b);
            }
        }
    }

    // ---- Metamorphic inclusion algebra: laws that hold for *any*
    // correct engine, with no reference implementation in sight. ----

    /// Transitivity: L ⊆ M ∧ M ⊆ N ⇒ L ⊆ N. Checked both on whatever
    /// random premises happen to hold and on a constructed union chain
    /// (L ⊆ L∪M ⊆ L∪M∪N) whose premises hold by construction, so the
    /// law is never vacuously satisfied.
    #[test]
    fn inclusion_is_transitive_per_engine(s in any::<u64>()) {
        let (l, mm, n) = (m(s), m(s.wrapping_add(1)), m(s.wrapping_add(2)));
        let lm = ops::union(&l, &mm);
        let lmn = ops::union(&lm, &n);
        for e in all_engines() {
            if e.is_subset(&l, &mm) && e.is_subset(&mm, &n) {
                assert!(e.is_subset(&l, &n), "{}: transitivity violated", e.kind());
            }
            assert!(e.is_subset(&l, &lm), "{}: L ⊄ L∪M", e.kind());
            assert!(e.is_subset(&lm, &lmn), "{}: L∪M ⊄ L∪M∪N", e.kind());
            assert!(e.is_subset(&l, &lmn), "{}: transitivity violated on union chain", e.kind());
        }
    }

    /// Intersection is a lower bound: L∩M ⊆ L and L∩M ⊆ M; moreover the
    /// product construction and the engine's own joint emptiness search
    /// must agree on whether L∩M is empty.
    #[test]
    fn intersection_is_a_lower_bound_per_engine(s in any::<u64>()) {
        let (l, mm) = (m(s), m(s.wrapping_add(1)));
        let both = ops::intersect_lang(&l, &mm);
        for e in all_engines() {
            assert!(e.is_subset(&both, &l), "{}: L∩M ⊄ L", e.kind());
            assert!(e.is_subset(&both, &mm), "{}: L∩M ⊄ M", e.kind());
            assert_eq!(
                e.intersection_empty(&l, &mm),
                e.is_subset(&both, &Nfa::empty_language()),
                "{}: joint emptiness disagrees with the materialized product",
                e.kind()
            );
        }
    }

    /// Reversal preserves inclusion: A ⊆ B ⇔ Aᴿ ⊆ Bᴿ.
    #[test]
    fn reversal_preserves_inclusion_per_engine(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let (ra, rb) = (a.reverse(), b.reverse());
        for e in all_engines() {
            assert_eq!(
                e.is_subset(&a, &b),
                e.is_subset(&ra, &rb),
                "{}: reversal flipped a subset verdict",
                e.kind()
            );
        }
    }

    /// Complement turns inclusion into emptiness: A ⊆ B ⇔ A ∩ ¬B = ∅.
    #[test]
    fn complement_reduces_inclusion_to_emptiness_per_engine(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let not_b = dfa::complement(&b);
        for e in all_engines() {
            assert_eq!(
                e.is_subset(&a, &b),
                e.intersection_empty(&a, &not_b),
                "{}: complement identity violated",
                e.kind()
            );
        }
    }
}

proptest! {
    // Whole solve runs are expensive (three engines x three builders per
    // case, each rebuilding its system from scratch), so this block runs
    // fewer cases than the query-level oracles above.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole solve runs over every system-level scaling generator agree
    /// on solutions, unsat cores, and all engine-independent counters.
    #[test]
    fn engines_agree_on_scaling_system_generators(s in any::<u64>()) {
        let q = 2 + (s % 3) as usize;
        assert_solves_agree(|| nested_system(2, q), "nested_system");
        assert_solves_agree(|| multi_group_system(2, q), "multi_group_system");
        assert_solves_agree(
            || random_system(s, &RandomSystemConfig::default()),
            "random_system",
        );
    }
}

/// Solver-level budget aborts (the CLI's exit-3 path) are engine-invariant
/// when the breach precedes any inclusion query: a one-product-state cap
/// trips during the product build under every engine, each error carries
/// the same breach kind, and lifting the budget restores byte-identical
/// facets across all engines.
#[test]
fn solver_budget_aborts_agree_across_engines() {
    let build = || {
        let (c1, c2, c3) = ci_instance_modular(4);
        let mut sys = System::new();
        let v1 = sys.var("v1");
        let v2 = sys.var("v2");
        let k1 = sys.constant("c1", c1);
        let k2 = sys.constant("c2", c2);
        let k3 = sys.constant("c3", c3);
        sys.require(Expr::Var(v1), k1);
        sys.require(Expr::Var(v2), k2);
        sys.require(Expr::Var(v1).concat(Expr::Var(v2)), k3);
        sys
    };
    for kind in EngineKind::ALL {
        let options = SolveOptions {
            inclusion_engine: kind,
            budget: Budget {
                max_product_states: Some(1),
                ..Budget::default()
            },
            ..SolveOptions::default()
        };
        let err = try_solve_traced(&build(), &options, &LangStore::new(), &Tracer::disabled())
            .expect_err("a one-product-state cap must trip on the blowup system");
        assert_eq!(
            err.kind,
            BudgetKind::ProductStates,
            "{kind}: breach kind diverged"
        );
    }
    assert_solves_agree(build, "modular blowup after lifting the budget");
}

/// The tentpole's second payoff, as an executable claim: the derivative
/// engine's pair frontier covers a whole LHS ε-closure per pop (one pair),
/// where the antichain frontier spends one macrostate per LHS state — so
/// there are inclusions the derivative engine decides under a macrostate
/// budget that forces the antichain engine to abort.
#[test]
fn derivative_decides_where_antichain_aborts_under_same_budget() {
    let antichain = inclusion_engine(EngineKind::Antichain);
    let derivative = inclusion_engine(EngineKind::Derivative);
    let mut separations = 0usize;
    for q in 4..=9usize {
        let mut candidates = vec![ci_instance(q), ci_instance_dense(q), ci_instance_modular(q)];
        candidates.push((m(q as u64), m(q as u64 + 100), m(q as u64 + 200)));
        for (c1, c2, c3) in candidates {
            let machines = [&c1, &c2, &c3];
            for a in machines {
                for b in machines {
                    let (verdict_a, cost_a) = antichain.is_subset_costed(a, b);
                    let (verdict_d, cost_d) = derivative.is_subset_costed(a, b);
                    assert_eq!(verdict_a, verdict_d, "engines diverge at q={q}");
                    if cost_d.macrostates >= cost_a.macrostates {
                        continue;
                    }
                    let limits = InclusionLimits {
                        max_macrostates: Some(cost_d.macrostates),
                        deadline: None,
                    };
                    let decided = derivative
                        .try_subset(a, b, &limits)
                        .expect("derivative fits its own measured budget");
                    assert_eq!(decided.0, verdict_d);
                    let abort = antichain
                        .try_subset(a, b, &limits)
                        .expect_err("antichain must abort below its measured cost");
                    match abort {
                        InclusionAbort::MacrostateCap { limit, cost } => {
                            assert_eq!(limit, cost_d.macrostates);
                            assert!(cost.macrostates <= limit);
                        }
                        InclusionAbort::Deadline { .. } => panic!("no deadline was set"),
                    }
                    separations += 1;
                }
            }
        }
    }
    assert!(
        separations > 0,
        "no scaling inclusion separated the engines; the derivative \
         frontier is not coarser than the antichain frontier"
    );
}
