//! Differential tests for the pluggable inclusion engines: the antichain
//! lazy engine and the eager determinize/complement/product engine must be
//! observationally identical on every query the solver can issue — random
//! NFA pairs, every `corpus::scaling` generator, and whole solve runs —
//! while the antichain engine must *decide* blowup inclusions the eager
//! engine can only abort on under the same macrostate budget.

use dprle::automata::generate::{random_nfa, RandomNfaConfig};
use dprle::automata::{
    inclusion_engine, EngineKind, InclusionAbort, InclusionLimits, LangStore, Nfa,
};
use dprle::core::{
    solve_traced, unsat_core, CollectSink, Expr, Solution, SolveOptions, SolveStats, System, Tracer,
};
use dprle::corpus::scaling::{
    ci_instance, ci_instance_dense, ci_instance_modular, multi_group_system, nested_system,
    random_system, RandomSystemConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

#[path = "common/inclusion_oracle.rs"]
mod oracle;

fn cfg() -> RandomNfaConfig {
    RandomNfaConfig {
        states: 6,
        edges_per_state: 2.0,
        eps_per_state: 0.4,
        alphabet: vec![b'a', b'b'],
        final_probability: 0.3,
    }
}

fn m(seed: u64) -> Nfa {
    random_nfa(seed, &cfg())
}

/// The two original engines; the full three-engine matrix (plus `auto`)
/// lives in `inclusion_differential_3way.rs`.
fn engines() -> [&'static dyn dprle::automata::InclusionEngine; 2] {
    [
        inclusion_engine(EngineKind::Eager),
        inclusion_engine(EngineKind::Antichain),
    ]
}

/// Asserts all four trait queries agree between the engines on `(a, b)`.
fn assert_queries_agree(a: &Nfa, b: &Nfa) {
    let [eager, antichain] = engines();
    assert_eq!(
        eager.is_subset(a, b),
        antichain.is_subset(a, b),
        "subset verdicts diverge"
    );
    assert_eq!(
        eager.equivalent(a, b),
        antichain.equivalent(a, b),
        "equivalence verdicts diverge"
    );
    assert_eq!(
        eager.intersection_empty(a, b),
        antichain.intersection_empty(a, b),
        "intersection-emptiness verdicts diverge"
    );
    oracle::assert_counterexamples_consistent(a, b, &[eager, antichain]);
}

/// Solves `system` under `kind` and renders the comparable facets: one
/// fingerprint line per assignment (or `UNSAT`), the unsat core, and the
/// stats with the engine's own work counter zeroed.
fn solve_facets(
    system: &System,
    kind: EngineKind,
) -> (Vec<String>, Option<Vec<usize>>, SolveStats) {
    let options = SolveOptions {
        inclusion_engine: kind,
        ..SolveOptions::default()
    };
    let store = LangStore::interning(options.interning);
    let (solution, mut stats) = solve_traced(system, &options, &store, &Tracer::disabled());
    let (lines, core) = match &solution {
        Solution::Unsat => (
            vec!["UNSAT".to_owned()],
            unsat_core(system, &options).map(|c| c.indices),
        ),
        Solution::Assignments(list) => (
            list.iter()
                .map(|a| {
                    system
                        .var_ids()
                        .map(|v| {
                            a.get(v)
                                .map(|l| format!("{:?}", l.fingerprint()))
                                .unwrap_or_else(|| "<unassigned>".to_owned())
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect(),
            None,
        ),
    };
    stats.inclusion_macrostates = 0;
    (lines, core, stats)
}

/// Asserts a whole solve run agrees between the engines: solutions, unsat
/// core, and every stats counter except `inclusion-macrostates`.
///
/// Takes a *builder* rather than a system: `Lang` handles cache their
/// fingerprints, so a system shared across runs would answer the second
/// engine's lookups from caches the first engine warmed, skewing the
/// hit/miss counters with no actual divergence.
fn assert_solves_agree(build: impl Fn() -> System, label: &str) {
    let eager = solve_facets(&build(), EngineKind::Eager);
    let antichain = solve_facets(&build(), EngineKind::Antichain);
    assert_eq!(eager.0, antichain.0, "{label}: solutions diverge");
    assert_eq!(eager.1, antichain.1, "{label}: unsat cores diverge");
    assert_eq!(
        eager.2, antichain.2,
        "{label}: stats diverge (inclusion-macrostates excluded)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All four queries agree on random NFA pairs, including same-seed
    /// (equal-language) pairs.
    #[test]
    fn engines_agree_on_random_nfa_pairs(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        assert_queries_agree(&a, &b);
        assert_queries_agree(&b, &a);
        assert_queries_agree(&a, &m(s)); // identical language both sides
    }

    /// All ordered pairs drawn from every NFA-triple scaling generator
    /// agree, across the q window the solver benchmarks use.
    #[test]
    fn engines_agree_on_scaling_nfa_generators(s in any::<u64>()) {
        let q = 3 + (s % 5) as usize;
        for (name, (c1, c2, c3)) in [
            ("ci_instance", ci_instance(q)),
            ("ci_instance_dense", ci_instance_dense(q)),
            ("ci_instance_modular", ci_instance_modular(q)),
        ] {
            let machines = [&c1, &c2, &c3];
            for a in machines {
                for b in machines {
                    let _ = name;
                    assert_queries_agree(a, b);
                }
            }
        }
    }

    /// Whole solve runs over every system-level scaling generator agree on
    /// solutions, unsat cores, and all engine-independent counters.
    #[test]
    fn engines_agree_on_scaling_system_generators(s in any::<u64>()) {
        let q = 2 + (s % 3) as usize;
        assert_solves_agree(|| nested_system(2, q), "nested_system");
        assert_solves_agree(|| multi_group_system(2, q), "multi_group_system");
        assert_solves_agree(
            || random_system(s, &RandomSystemConfig::default()),
            "random_system",
        );
    }
}

/// The §3.5 blowup family (`v₁·v₂ ⊆ c₃` over the modular instances), as a
/// plain system the solver runs both engines over.
#[test]
fn engines_agree_on_modular_blowup_systems() {
    for q in [3usize, 5, 7] {
        let build = || {
            let (c1, c2, c3) = ci_instance_modular(q);
            let mut sys = System::new();
            let v1 = sys.var("v1");
            let v2 = sys.var("v2");
            let k1 = sys.constant("c1", c1);
            let k2 = sys.constant("c2", c2);
            let k3 = sys.constant("c3", c3);
            sys.require(Expr::Var(v1), k1);
            sys.require(Expr::Var(v2), k2);
            sys.require(Expr::Var(v1).concat(Expr::Var(v2)), k3);
            sys
        };
        assert_solves_agree(build, "modular blowup");
    }
}

/// The paper's Figure 9/10 shared-variable CI-group (the same system the
/// parallel-determinism golden run uses).
fn figure_9_10_system() -> System {
    let exact = |p: &str| {
        dprle::regex::Regex::new(p)
            .expect("compiles")
            .exact_language()
            .clone()
    };
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let ca = sys.constant("ca", exact("o(pp)+"));
    let cb = sys.constant("cb", exact("p*(qq)+"));
    let cc = sys.constant("cc", exact("q*r"));
    let c1 = sys.constant("c1", exact("op{5}q*"));
    let c2 = sys.constant("c2", exact("p*q{4}r"));
    sys.require(Expr::Var(va), ca);
    sys.require(Expr::Var(vb), cb);
    sys.require(Expr::Var(vc), cc);
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);
    sys
}

/// One traced sequential run over a fresh Figure 9/10 system under
/// `kind`, returning the timestamp-zeroed JSONL journal.
fn figure_9_10_journal(kind: EngineKind) -> String {
    let sys = figure_9_10_system();
    let options = SolveOptions {
        inclusion_engine: kind,
        trace: true,
        ..SolveOptions::default()
    };
    let sink = Arc::new(CollectSink::new());
    let tracer = Tracer::new(sink.clone());
    let store = LangStore::interning(options.interning);
    let (solution, _) = solve_traced(&sys, &options, &store, &tracer);
    assert!(solution.is_sat(), "Figure 10's system is satisfiable");
    sink.take()
        .into_iter()
        .map(|mut e| {
            e.ts_us = 0;
            e.to_json() + "\n"
        })
        .collect()
}

/// Golden run: solving Figure 9/10 under `--inclusion=antichain` (the
/// default) emits a journal byte-identical — modulo the zeroed `ts_us` —
/// to the committed `testdata/golden/figure_9_10.antichain.jsonl`, and
/// the eager engine replays the *same* journal (memoized inclusion
/// answers are engine-invariant, so the trace is too).
///
/// Regenerate after an intentional trace change with
/// `DPRLE_BLESS=1 cargo test --test inclusion_differential`.
#[test]
fn figure_9_10_antichain_journal_matches_committed_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/testdata/golden/figure_9_10.antichain.jsonl"
    );
    let antichain = figure_9_10_journal(EngineKind::Antichain);
    if std::env::var_os("DPRLE_BLESS").is_some() {
        std::fs::write(golden_path, &antichain).expect("bless writes golden");
    }
    let committed = std::fs::read_to_string(golden_path).expect("committed golden readable");
    assert_eq!(
        committed, antichain,
        "antichain journal drifted from the committed golden \
         (DPRLE_BLESS=1 to regenerate after an intentional change)"
    );
    assert_eq!(
        figure_9_10_journal(EngineKind::Eager),
        antichain,
        "the eager engine must replay the identical journal"
    );
}

/// The tentpole's payoff, as an executable claim: on scaling blowups there
/// are inclusions the antichain engine decides outright under a macrostate
/// budget that forces the eager engine to abort — lazy subset construction
/// plus subsumption pruning visits strictly fewer macrostates than eager
/// determinization on at least one generator pair.
#[test]
fn antichain_decides_where_eager_aborts_under_same_budget() {
    let [eager, antichain] = engines();
    let mut separations = 0usize;
    for q in 4..=9usize {
        let mut candidates = vec![ci_instance(q), ci_instance_dense(q), ci_instance_modular(q)];
        candidates.push((m(q as u64), m(q as u64 + 100), m(q as u64 + 200)));
        for (c1, c2, c3) in candidates {
            let machines = [&c1, &c2, &c3];
            for a in machines {
                for b in machines {
                    let (verdict_e, cost_e) = eager.is_subset_costed(a, b);
                    let (verdict_a, cost_a) = antichain.is_subset_costed(a, b);
                    assert_eq!(verdict_e, verdict_a, "engines diverge at q={q}");
                    if cost_a.macrostates >= cost_e.macrostates {
                        continue;
                    }
                    // A budget the antichain engine fits in but the eager
                    // engine provably cannot.
                    let limits = InclusionLimits {
                        max_macrostates: Some(cost_a.macrostates),
                        deadline: None,
                    };
                    let decided = antichain
                        .try_subset(a, b, &limits)
                        .expect("antichain fits its own measured budget");
                    assert_eq!(decided.0, verdict_a);
                    let abort = eager
                        .try_subset(a, b, &limits)
                        .expect_err("eager must abort below its measured cost");
                    match abort {
                        InclusionAbort::MacrostateCap { limit, cost } => {
                            assert_eq!(limit, cost_a.macrostates);
                            // The partial-work report never exceeds the cap
                            // (and is zero only if the cap tripped before the
                            // first macrostate).
                            assert!(cost.macrostates <= limit);
                        }
                        InclusionAbort::Deadline { .. } => {
                            panic!("no deadline was set")
                        }
                    }
                    separations += 1;
                }
            }
        }
    }
    assert!(
        separations > 0,
        "no scaling inclusion separated the engines; the lazy engine is \
         not pruning"
    );
}
