//! Shared counterexample-witness oracle for the inclusion differential
//! tests.
//!
//! Integration-test binaries cannot link against each other, so both
//! `inclusion_differential.rs` and `inclusion_differential_3way.rs`
//! include this file textually via `#[path = "common/inclusion_oracle.rs"]`.

use dprle::automata::{InclusionEngine, Nfa};

/// Asserts `witness` is a genuine separator for `a ⊄ b`: accepted by the
/// LHS NFA and rejected by the RHS NFA. Every counterexample any engine
/// emits must pass this — a verdict-only diff would miss an engine that
/// says "not subset" for the right reason but fabricates the witness.
pub fn assert_valid_witness(a: &Nfa, b: &Nfa, witness: &[u8], engine: &str) {
    assert!(
        a.contains(witness),
        "{engine}: witness {witness:?} not in L(a)"
    );
    assert!(
        !b.contains(witness),
        "{engine}: witness {witness:?} in L(b)"
    );
}

/// Asserts the engines agree on counterexample *presence* for `(a, b)`,
/// and that every produced witness is valid and shortest (witnesses need
/// not be byte-equal across engines, but no engine may miss a shorter
/// separator another engine found).
pub fn assert_counterexamples_consistent(
    a: &Nfa,
    b: &Nfa,
    engines: &[&'static dyn InclusionEngine],
) {
    let witnesses: Vec<(&str, Option<Vec<u8>>)> = engines
        .iter()
        .map(|e| (e.kind().name(), e.counterexample(a, b)))
        .collect();
    let (first_name, first) = &witnesses[0];
    for (name, w) in &witnesses[1..] {
        assert_eq!(
            first.is_some(),
            w.is_some(),
            "counterexample presence diverges between {first_name} and {name}"
        );
    }
    for (name, w) in &witnesses {
        if let Some(w) = w {
            assert_valid_witness(a, b, w, name);
            let shortest = witnesses
                .iter()
                .filter_map(|(_, o)| o.as_ref().map(Vec::len))
                .min()
                .expect("at least this witness exists");
            assert_eq!(w.len(), shortest, "{name} missed a shorter witness");
        }
    }
}
