//! The branch-parallel worklist solver is observationally identical to
//! the sequential Figure 7 loop: same solutions in the same order, same
//! counters, and (modulo wall-clock timestamps) the same trace journal.
//!
//! Every comparison below rebuilds its system from scratch per run:
//! `Lang` handles cache their canonical fingerprint internally, so a
//! system reused across runs would answer the second run's fingerprint
//! lookups from caches the first run warmed and skew the hit/miss
//! counters — the byte-identity contract is *per cold run*.

use dprle::automata::LangStore;
use dprle::core::{
    solve_traced, solve_with_stats, validate_jsonl, validate_ledger_jsonl, CollectLedger,
    CollectSink, Expr, Ledger, Solution, SolveOptions, System, Tracer, LEDGER_SCHEMA,
};
use dprle::corpus::scaling::{multi_group_system, random_system, RandomSystemConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Canonical fingerprints of every assignment, in solver output order.
fn solution_keys(system: &System, solution: &Solution) -> Vec<Vec<String>> {
    solution
        .assignments()
        .iter()
        .map(|a| {
            system
                .var_ids()
                .map(|v| {
                    a.get(v)
                        .map(|l| format!("{:?}", l.fingerprint()))
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect()
}

fn solve_fresh(make: impl Fn() -> System, jobs: usize) -> (Vec<Vec<String>>, bool) {
    let sys = make();
    let options = SolveOptions {
        jobs,
        ..SolveOptions::default()
    };
    let (solution, _) = solve_with_stats(&sys, &options);
    (solution_keys(&sys, &solution), solution.is_sat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random systems: the parallel solver returns the same assignments
    /// (by canonical fingerprint, in the same deterministic-merge order)
    /// as the sequential one, at every thread count.
    #[test]
    fn random_systems_solve_identically_at_any_jobs(seed in any::<u64>()) {
        let cfg = RandomSystemConfig::default();
        let make = || random_system(seed, &cfg);
        let (seq_keys, seq_sat) = solve_fresh(make, 1);
        for jobs in [2usize, 4, 8] {
            let (par_keys, par_sat) = solve_fresh(make, jobs);
            prop_assert_eq!(seq_sat, par_sat, "seed {} jobs {}", seed, jobs);
            prop_assert_eq!(&seq_keys, &par_keys, "seed {} jobs {}", seed, jobs);
        }
    }

    /// Same for the branching multi-group workload the parallel solver is
    /// built for (disjuncts^groups complete branches).
    #[test]
    fn multi_group_systems_solve_identically(raw in any::<u64>()) {
        // The vendored proptest shim has no range strategies; carve the
        // two small parameters (1..=3 each) out of one arbitrary u64.
        let groups = (raw % 3) as usize + 1;
        let disjuncts = ((raw >> 8) % 3) as usize + 1;
        let make = || multi_group_system(groups, disjuncts);
        let seq = solve_fresh(make, 1);
        for jobs in [4usize, 8] {
            prop_assert_eq!(&seq, &solve_fresh(make, jobs), "jobs {}", jobs);
        }
    }
}

/// The paper's Figure 9/10 shared-variable CI-group.
fn figure_9_10_system() -> System {
    let exact = |p: &str| {
        dprle::regex::Regex::new(p)
            .expect("compiles")
            .exact_language()
            .clone()
    };
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let ca = sys.constant("ca", exact("o(pp)+"));
    let cb = sys.constant("cb", exact("p*(qq)+"));
    let cc = sys.constant("cc", exact("q*r"));
    let c1 = sys.constant("c1", exact("op{5}q*"));
    let c2 = sys.constant("c2", exact("p*q{4}r"));
    sys.require(Expr::Var(va), ca);
    sys.require(Expr::Var(vb), cb);
    sys.require(Expr::Var(vc), cc);
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);
    sys
}

/// One traced run over a fresh Figure 9/10 system: raw JSONL (for schema
/// validation) plus the timestamp-zeroed lines (for byte comparison).
fn traced_journal(jobs: usize) -> (String, Vec<String>) {
    let sys = figure_9_10_system();
    let options = SolveOptions {
        jobs,
        trace: true,
        ..SolveOptions::default()
    };
    let sink = Arc::new(CollectSink::new());
    let tracer = Tracer::new(sink.clone());
    let store = LangStore::interning(options.interning);
    let (solution, _) = solve_traced(&sys, &options, &store, &tracer);
    assert!(solution.is_sat(), "Figure 10's system is satisfiable");
    let events = sink.take();
    let raw: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let zeroed = events
        .into_iter()
        .map(|mut e| {
            e.ts_us = 0;
            e.to_json()
        })
        .collect();
    (raw, zeroed)
}

/// Golden run: solving Figure 9/10 at `--jobs 4` emits a journal that
/// (a) validates against the checked-in trace schema with its real
/// timestamps intact and (b) is byte-identical to the sequential journal
/// once `ts_us` is zeroed.
#[test]
fn figure_9_10_parallel_journal_is_schema_valid_and_sequential_identical() {
    let (raw4, zeroed4) = traced_journal(4);
    let schema = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/trace.schema.json"
    ))
    .expect("checked-in schema readable");
    let validated = validate_jsonl(&schema, &raw4).expect("jobs=4 journal validates");
    assert!(validated > 0, "journal must not be empty");

    let (_, zeroed1) = traced_journal(1);
    assert_eq!(
        zeroed1.len(),
        zeroed4.len(),
        "journals must have the same event count"
    );
    for (i, (a, b)) in zeroed1.iter().zip(&zeroed4).enumerate() {
        assert_eq!(a, b, "journal line {i} differs between jobs=1 and jobs=4");
    }
}

/// One ledgered run over a fresh system: raw JSONL (for schema
/// validation) plus the timestamp-zeroed lines (for byte comparison).
/// Same per-cold-run discipline as `traced_journal` — the memo hit/miss
/// column depends on cache temperature.
fn ledger_journal(make: &dyn Fn() -> System, jobs: usize) -> (String, Vec<String>) {
    let sys = make();
    let sink = Arc::new(CollectLedger::new());
    let options = SolveOptions {
        jobs,
        ledger: Ledger::new(sink.clone()),
        ..SolveOptions::default()
    };
    let (_, _) = solve_with_stats(&sys, &options);
    let records = sink.take();
    let raw: String = records.iter().map(|r| r.to_json() + "\n").collect();
    let zeroed = records
        .into_iter()
        .map(|mut r| {
            r.ts_us = 0;
            r.to_json()
        })
        .collect();
    (raw, zeroed)
}

/// Asserts the cost ledger for `make()` is schema-valid and — once wall
/// timestamps are zeroed — byte-identical at every thread count.
fn assert_ledger_deterministic(label: &str, make: &dyn Fn() -> System) {
    let (raw1, zeroed1) = ledger_journal(make, 1);
    let validated = validate_ledger_jsonl(LEDGER_SCHEMA, &raw1).expect("ledger validates");
    assert!(validated > 0, "{label}: ledger must not be empty");
    for jobs in [4usize, 8] {
        let (_, zeroed_n) = ledger_journal(make, jobs);
        assert_eq!(
            zeroed1.len(),
            zeroed_n.len(),
            "{label}: record count differs between jobs=1 and jobs={jobs}"
        );
        for (i, (a, b)) in zeroed1.iter().zip(&zeroed_n).enumerate() {
            assert_eq!(
                a, b,
                "{label}: ledger line {i} differs between jobs=1 and jobs={jobs}"
            );
        }
    }
}

/// Golden run: the query cost ledger for Figure 9/10 validates against
/// the embedded schema and replays byte-identically at `--jobs 1/4/8`.
#[test]
fn figure_9_10_ledger_is_schema_valid_and_identical_across_jobs() {
    assert_ledger_deterministic("figure 9/10", &figure_9_10_system);
}

/// The same byte-identity contract over the synthetic scaling corpus:
/// a seeded random system and the branching multi-group workload the
/// parallel solver speculates hardest on.
#[test]
fn scaling_corpus_ledgers_are_identical_across_jobs() {
    let cfg = RandomSystemConfig::default();
    for seed in [7u64, 1009, 65537] {
        assert_ledger_deterministic(&format!("random seed {seed}"), &|| {
            random_system(seed, &cfg)
        });
    }
    assert_ledger_deterministic("multi-group 2x2", &|| multi_group_system(2, 2));
    assert_ledger_deterministic("multi-group 3x2", &|| multi_group_system(3, 2));
}
