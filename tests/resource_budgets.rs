//! Resource budgets degrade gracefully: on the §3.5 worst-case workload
//! (position × modulo-counter products, Θ(q²) reachable pairs) a
//! `max_product_states` budget must abort with a typed
//! [`ResourceExhausted`] — never a panic or an unbounded blowup — and the
//! identical system must solve cleanly once the budget is lifted.

use dprle::automata::generate::{random_nfa, RandomNfaConfig};
use dprle::automata::LangStore;
use dprle::core::{
    try_solve_traced, Budget, BudgetKind, EngineKind, Expr, Metrics, SolveOptions, System, Tracer,
};
use dprle::corpus::scaling::ci_instance_modular;
use proptest::prelude::*;

/// `v₁·v₂ ⊆ c₃` with `v₁ ⊆ c₁`, `v₂ ⊆ c₂` over the modular family — the
/// concat-intersect inside the solver attains the quadratic product bound.
fn blowup_system(q: usize) -> System {
    let (c1, c2, c3) = ci_instance_modular(q);
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let k1 = sys.constant("c1", c1);
    let k2 = sys.constant("c2", c2);
    let k3 = sys.constant("c3", c3);
    sys.require(Expr::Var(v1), k1);
    sys.require(Expr::Var(v2), k2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), k3);
    sys
}

fn budgeted(limit: u64) -> SolveOptions {
    SolveOptions {
        metrics: Metrics::enabled(),
        budget: Budget {
            max_product_states: Some(limit),
            ..Budget::default()
        },
        ..SolveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn product_budget_aborts_before_blowup_and_lifts_cleanly(s in any::<u64>()) {
        // The vendored proptest stub only samples `any::<T>()`; fold the
        // seed into the q ∈ [3, 8] size window ourselves.
        let q = 3 + (s % 6) as usize;
        // Unlimited pass first: establishes the workload's true product
        // cost, which every budgeted claim below is judged against.
        let (solution, stats) = try_solve_traced(
            &blowup_system(q),
            &SolveOptions::default(),
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect("no budget set");
        prop_assert!(solution.is_sat(), "the modular family is satisfiable");
        let need = stats.product_states;
        prop_assert!(need >= 2, "workload must do real product work, got {need}");

        // Any binding budget must convert the blowup into a typed error.
        let limit = need - 1;
        let options = budgeted(limit);
        let err = try_solve_traced(
            &blowup_system(q),
            &options,
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect_err("budget below the true cost must trip");
        prop_assert_eq!(err.kind, BudgetKind::ProductStates);
        prop_assert_eq!(err.limit, limit);
        // The per-op cap guarantees at most `limit` states materialize in
        // any single product, so the observed total never exceeds what the
        // unlimited run needed.
        prop_assert!(err.observed > 0);
        prop_assert!(
            err.observed <= need,
            "observed {} exceeds the unlimited run's {need}",
            err.observed
        );
        let snapshot = err.snapshot.as_ref().expect("metrics were enabled");
        prop_assert!(snapshot.get("core.solve.product_states").is_some());

        // The same system solves cleanly with the budget lifted.
        let (again, lifted) = try_solve_traced(
            &blowup_system(q),
            &SolveOptions::default(),
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect("lifted budget");
        prop_assert!(again.is_sat());
        prop_assert_eq!(lifted.product_states, need, "cost is deterministic");
    }
}

/// A dense random machine whose subset structure makes inclusion queries
/// do real frontier work inside the solver.
fn dense(seed: u64, states: usize) -> dprle::automata::Nfa {
    random_nfa(
        seed,
        &RandomNfaConfig {
            states,
            edges_per_state: 3.0,
            eps_per_state: 0.5,
            alphabet: vec![b'a', b'b'],
            final_probability: 0.4,
        },
    )
}

/// A workload whose solve does substantial *inclusion-engine* work after
/// the product builds: the shared `v1` forces disjunct merging, the
/// constant leaf `c2` forces narrowing checks, and the dense machines
/// make both non-trivial.
fn inclusion_heavy_system() -> System {
    let (seed, states) = (7u64, 9usize);
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let k2 = sys.constant("c2", dense(seed + 1, states));
    let k3 = sys.constant("c3", dense(seed + 2, states));
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), k3);
    sys.require(Expr::Const(k2).concat(Expr::Var(v1)), k3);
    sys
}

/// A `ResourceExhausted` raised while the solver is doing inclusion work
/// carries the engine's partial frontier cost in its metrics snapshot:
/// `automata.inclusion.macrostates` is positive even though the run never
/// completed. (The engine records nothing into the inclusion memo on an
/// abort — only into the metrics registry — so the exhaustion snapshot is
/// the one place the wasted work is visible.)
#[test]
fn exhaustion_snapshot_carries_partial_inclusion_work() {
    for kind in EngineKind::ALL {
        let (_, stats) = try_solve_traced(
            &inclusion_heavy_system(),
            &SolveOptions {
                inclusion_engine: kind,
                metrics: Metrics::enabled(),
                ..SolveOptions::default()
            },
            &LangStore::new(),
            &Tracer::disabled(),
        )
        .expect("no budget set");
        assert!(
            stats.inclusion_macrostates > 0,
            "{kind:?}: workload must do real inclusion work"
        );

        // Walk the cap downward until an abort lands during or after the
        // inclusion phase: its snapshot must carry positive macrostates.
        // (Higher caps may instead trip a product build that precedes any
        // inclusion query; those snapshots legitimately report zero.)
        let mut witnessed = false;
        for limit in (1..stats.product_states).rev() {
            let options = SolveOptions {
                inclusion_engine: kind,
                metrics: Metrics::enabled(),
                budget: Budget {
                    max_product_states: Some(limit),
                    ..Budget::default()
                },
                ..SolveOptions::default()
            };
            let Err(err) = try_solve_traced(
                &inclusion_heavy_system(),
                &options,
                &LangStore::new(),
                &Tracer::disabled(),
            ) else {
                continue;
            };
            assert_eq!(err.kind, BudgetKind::ProductStates);
            let snapshot = err.snapshot.as_ref().expect("metrics were enabled");
            let entry = snapshot
                .get("automata.inclusion.macrostates")
                .expect("snapshot always registers the inclusion counter");
            if let dprle::core::MetricValue::Counter { value } = entry.value {
                if value > 0 {
                    witnessed = true;
                    break;
                }
            }
        }
        assert!(
            witnessed,
            "{kind:?}: no budgeted abort carried partial inclusion work"
        );

        // And the identical system still solves once the budget is lifted.
        let (solution, _) = try_solve_traced(
            &inclusion_heavy_system(),
            &SolveOptions {
                inclusion_engine: kind,
                ..SolveOptions::default()
            },
            &LangStore::new(),
            &Tracer::disabled(),
        )
        .expect("lifted budget");
        assert!(solution.is_sat());
    }
}
