//! Resource budgets degrade gracefully: on the §3.5 worst-case workload
//! (position × modulo-counter products, Θ(q²) reachable pairs) a
//! `max_product_states` budget must abort with a typed
//! [`ResourceExhausted`] — never a panic or an unbounded blowup — and the
//! identical system must solve cleanly once the budget is lifted.

use dprle::automata::LangStore;
use dprle::core::{
    try_solve_traced, Budget, BudgetKind, Expr, Metrics, SolveOptions, System, Tracer,
};
use dprle::corpus::scaling::ci_instance_modular;
use proptest::prelude::*;

/// `v₁·v₂ ⊆ c₃` with `v₁ ⊆ c₁`, `v₂ ⊆ c₂` over the modular family — the
/// concat-intersect inside the solver attains the quadratic product bound.
fn blowup_system(q: usize) -> System {
    let (c1, c2, c3) = ci_instance_modular(q);
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let k1 = sys.constant("c1", c1);
    let k2 = sys.constant("c2", c2);
    let k3 = sys.constant("c3", c3);
    sys.require(Expr::Var(v1), k1);
    sys.require(Expr::Var(v2), k2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), k3);
    sys
}

fn budgeted(limit: u64) -> SolveOptions {
    SolveOptions {
        metrics: Metrics::enabled(),
        budget: Budget {
            max_product_states: Some(limit),
            ..Budget::default()
        },
        ..SolveOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn product_budget_aborts_before_blowup_and_lifts_cleanly(s in any::<u64>()) {
        // The vendored proptest stub only samples `any::<T>()`; fold the
        // seed into the q ∈ [3, 8] size window ourselves.
        let q = 3 + (s % 6) as usize;
        // Unlimited pass first: establishes the workload's true product
        // cost, which every budgeted claim below is judged against.
        let (solution, stats) = try_solve_traced(
            &blowup_system(q),
            &SolveOptions::default(),
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect("no budget set");
        prop_assert!(solution.is_sat(), "the modular family is satisfiable");
        let need = stats.product_states;
        prop_assert!(need >= 2, "workload must do real product work, got {need}");

        // Any binding budget must convert the blowup into a typed error.
        let limit = need - 1;
        let options = budgeted(limit);
        let err = try_solve_traced(
            &blowup_system(q),
            &options,
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect_err("budget below the true cost must trip");
        prop_assert_eq!(err.kind, BudgetKind::ProductStates);
        prop_assert_eq!(err.limit, limit);
        // The per-op cap guarantees at most `limit` states materialize in
        // any single product, so the observed total never exceeds what the
        // unlimited run needed.
        prop_assert!(err.observed > 0);
        prop_assert!(
            err.observed <= need,
            "observed {} exceeds the unlimited run's {need}",
            err.observed
        );
        let snapshot = err.snapshot.as_ref().expect("metrics were enabled");
        prop_assert!(snapshot.get("core.solve.product_states").is_some());

        // The same system solves cleanly with the budget lifted.
        let (again, lifted) = try_solve_traced(
            &blowup_system(q),
            &SolveOptions::default(),
            &LangStore::new(),
            &Tracer::disabled(),
        ).expect("lifted budget");
        prop_assert!(again.is_sat());
        prop_assert_eq!(lifted.product_states, need, "cost is deterministic");
    }
}
