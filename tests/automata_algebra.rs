//! Property tests for the automata substrate: the algebra every paper
//! construction relies on, checked on random machines.

use dprle::automata::generate::{random_nfa, RandomNfaConfig};
use dprle::automata::quotient::{left_quotient, left_quotient_universal};
use dprle::automata::{
    canonical_key, complement, determinize, equivalent, is_subset, minimize, ops, Nfa,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const AB: &[u8] = b"ab";

fn cfg() -> RandomNfaConfig {
    RandomNfaConfig {
        states: 5,
        edges_per_state: 1.8,
        eps_per_state: 0.4,
        alphabet: vec![b'a', b'b'],
        final_probability: 0.3,
    }
}

fn m(seed: u64) -> Nfa {
    random_nfa(seed, &cfg())
}

/// Exhaustive language comparison up to a length bound.
fn lang(nfa: &Nfa, n: usize) -> BTreeSet<Vec<u8>> {
    nfa.enumerate_upto(AB, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intersection_is_set_intersection(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let i = ops::intersect(&a, &b).nfa;
        let expected: BTreeSet<_> =
            lang(&a, 4).intersection(&lang(&b, 4)).cloned().collect();
        prop_assert_eq!(lang(&i, 4), expected);
    }

    #[test]
    fn union_is_set_union(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let u = ops::union(&a, &b);
        let expected: BTreeSet<_> = lang(&a, 4).union(&lang(&b, 4)).cloned().collect();
        prop_assert_eq!(lang(&u, 4), expected);
    }

    #[test]
    fn concat_membership(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let c = ops::concat(&a, &b).nfa;
        for u in lang(&a, 2) {
            for v in lang(&b, 2) {
                let mut w = u.clone();
                w.extend_from_slice(&v);
                prop_assert!(c.contains(&w), "missing {:?}·{:?}", u, v);
            }
        }
        // And conversely up to length 3: every member splits.
        for w in lang(&c, 3) {
            let splits = (0..=w.len())
                .any(|i| a.contains(&w[..i]) && b.contains(&w[i..]));
            prop_assert!(splits, "unsplittable member {:?}", w);
        }
    }

    #[test]
    fn concat_is_associative(s in any::<u64>()) {
        let (a, b, c) = (m(s), m(s.wrapping_add(1)), m(s.wrapping_add(2)));
        let left = ops::concat(&ops::concat(&a, &b).nfa, &c).nfa;
        let right = ops::concat(&a, &ops::concat(&b, &c).nfa).nfa;
        prop_assert!(equivalent(&left, &right));
    }

    #[test]
    fn determinize_preserves_language(s in any::<u64>()) {
        let a = m(s);
        let d = determinize(&a).to_nfa();
        prop_assert!(equivalent(&a, &d));
    }

    #[test]
    fn minimize_preserves_language_and_shrinks(s in any::<u64>()) {
        let a = m(s);
        let min = minimize(&a);
        prop_assert!(equivalent(&a, &min));
        prop_assert!(min.num_states() <= determinize(&a).num_states().max(1));
    }

    #[test]
    fn complement_partitions_words(s in any::<u64>()) {
        let a = m(s);
        let not_a = complement(&a);
        for w in [&b""[..], b"a", b"ab", b"ba", b"aab", b"bbb"] {
            prop_assert!(a.contains(w) != not_a.contains(w), "word {:?}", w);
        }
    }

    #[test]
    fn reverse_is_involutive(s in any::<u64>()) {
        let a = m(s);
        prop_assert!(equivalent(&a, &a.reverse().reverse()));
    }

    #[test]
    fn reverse_reverses_members(s in any::<u64>()) {
        let a = m(s);
        let r = a.reverse();
        for w in lang(&a, 4) {
            let mut rev = w.clone();
            rev.reverse();
            prop_assert!(r.contains(&rev));
        }
    }

    #[test]
    fn subset_agrees_with_enumeration(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        if is_subset(&a, &b) {
            prop_assert!(lang(&a, 4).is_subset(&lang(&b, 4)));
        } else {
            // A genuine counterexample exists.
            let cex = dprle::automata::inclusion_counterexample(&a, &b)
                .expect("non-inclusion has a witness");
            prop_assert!(a.contains(&cex) && !b.contains(&cex));
        }
    }

    #[test]
    fn canonical_keys_decide_equivalence(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        prop_assert_eq!(canonical_key(&a) == canonical_key(&b), equivalent(&a, &b));
        prop_assert_eq!(canonical_key(&a), canonical_key(&a.normalize()));
    }

    #[test]
    fn trim_and_normalize_preserve_language(s in any::<u64>()) {
        let a = m(s);
        prop_assert!(equivalent(&a, &a.trim().0));
        prop_assert!(equivalent(&a, &a.normalize()));
        prop_assert!(a.normalize().is_normalized());
    }

    #[test]
    fn star_contains_all_powers(s in any::<u64>()) {
        let a = m(s);
        let st = ops::star(&a);
        prop_assert!(st.contains(b""));
        for u in lang(&a, 2) {
            let mut w = u.clone();
            w.extend_from_slice(&u);
            prop_assert!(st.contains(&u));
            prop_assert!(st.contains(&w));
        }
    }

    #[test]
    fn existential_quotient_agrees_with_definition(s in any::<u64>()) {
        let (l, c) = (m(s), m(s.wrapping_add(1)));
        let q = left_quotient(&l, &c);
        let prefixes = lang(&c, 3);
        // w ∈ q ⟺ ∃u ∈ C. uw ∈ L. Soundness is checked with an exact
        // oracle through an independent code path: the witnesses u form
        // C ∩ right_quotient(L, {w}), which must be nonempty.
        for w in q.enumerate_upto(AB, 2) {
            let u_set = dprle::automata::quotient::right_quotient(&l, &Nfa::literal(&w));
            let witnesses = ops::intersect(&c, &u_set).nfa;
            prop_assert!(!witnesses.is_empty_language(), "no witness for {:?}", w);
        }
        for u in &prefixes {
            for w in lang(&l, 4).iter().filter(|w| w.starts_with(u.as_slice())) {
                prop_assert!(q.contains(&w[u.len()..]));
            }
        }
    }

    #[test]
    fn universal_quotient_is_contained_in_existential(s in any::<u64>()) {
        let (l, c) = (m(s), m(s.wrapping_add(1)));
        if c.is_empty_language() {
            return Ok(()); // vacuous case: universal quotient is Σ*
        }
        let e = left_quotient(&l, &c);
        let u = left_quotient_universal(&l, &c);
        prop_assert!(is_subset(&u, &e));
    }

    #[test]
    fn shortest_member_is_shortest_and_member(s in any::<u64>()) {
        let a = m(s);
        match a.shortest_member() {
            None => prop_assert!(a.is_empty_language()),
            Some(w) => {
                prop_assert!(a.contains(&w));
                prop_assert_eq!(Some(w.len()), a.shortest_member_len());
                for shorter in lang(&a, w.len().saturating_sub(1)) {
                    prop_assert!(shorter.len() >= w.len());
                }
            }
        }
    }
}
