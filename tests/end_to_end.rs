//! End-to-end integration tests spanning every crate: regex front end →
//! automata substrate → decision procedure → program analysis → corpus.

use dprle::core::{solve, solve_first, Expr, SolveOptions, System};
use dprle::corpus::{vulnerable_program, FIG12_ROWS};
use dprle::lang::symex::SymexOptions;
use dprle::lang::{analyze, Policy, Program};
use dprle::regex::Regex;

#[test]
fn figure1_pipeline_produces_a_working_exploit() {
    let report = analyze(
        &Program::figure1(),
        &Policy::sql_quote(),
        &SymexOptions::default(),
        &SolveOptions::default(),
    )
    .expect("analysis succeeds");
    assert_eq!(report.findings.len(), 1);
    let exploit = &report.findings[0].witnesses["posted_newsid"];

    // Simulate the program concretely on the exploit: it must pass the
    // filter and produce a query containing a quote.
    let filter = Regex::new("[\\d]+$").expect("filter compiles");
    assert!(filter.is_match(exploit), "exploit must survive line 2");
    let mut query = b"SELECT * FROM news WHERE newsid=nid_".to_vec();
    query.extend_from_slice(exploit);
    assert!(query.contains(&b'\''), "query must be subverted");
}

#[test]
fn exploits_pass_their_own_filters_for_every_fig12_row() {
    // For each (non-heavy) Figure 12 program: replay the generated exploit
    // through the *actual program* with the concrete interpreter and
    // observe the subverted query — ground-truth validation.
    for spec in FIG12_ROWS.iter().filter(|s| !s.heavy) {
        let program = vulnerable_program(spec);
        let report = analyze(
            &program,
            &Policy::sql_quote(),
            &SymexOptions::default(),
            &SolveOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(report.findings.len(), 1, "{} has one finding", spec.name);
        let finding = &report.findings[0];
        let main = format!("posted_{}", spec.name);
        let exploit = finding.witnesses.get(&main).expect("main input witness");
        let filter = Regex::new("[\\d]+$").expect("compiles");
        assert!(filter.is_match(exploit), "{}: filter bypass", spec.name);
        assert!(exploit.contains(&b'\''), "{}: injection byte", spec.name);
        assert_eq!(finding.num_constraints, spec.c, "{}: |C|", spec.name);

        // Concrete replay: supply every witness as a request parameter,
        // run the program, and check a quote reached the database.
        let inputs: std::collections::HashMap<String, Vec<u8>> = finding
            .witnesses
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let result = dprle::lang::run(&program, &inputs)
            .unwrap_or_else(|e| panic!("{}: interpreter: {e}", spec.name));
        assert!(
            !result.exited,
            "{}: exploit must survive all guards",
            spec.name
        );
        assert!(
            result.any_query_contains(b'\''),
            "{}: the executed query must be subverted",
            spec.name
        );
    }
}

#[test]
fn regex_to_solver_roundtrip() {
    // A language built by the regex crate, constrained through the solver,
    // verified by the automata crate.
    let mut sys = System::new();
    let v = sys.var("v");
    let hex = sys
        .constant_regex_exact("hex", "0x[0-9a-f]+")
        .expect("compiles");
    let short = sys.constant("short", dprle::automata::Nfa::length_between(0, 4));
    sys.require(Expr::Var(v), hex);
    sys.require(Expr::Var(v), short);
    let solution = solve(&sys, &SolveOptions::default());
    let lang = solution
        .first()
        .expect("sat")
        .get(v)
        .expect("assigned")
        .clone();
    assert!(lang.contains(b"0x1"));
    assert!(lang.contains(b"0xab"));
    assert!(!lang.contains(b"0xabc")); // length 5
    assert!(!lang.contains(b"xx"));
}

#[test]
fn cli_format_agrees_with_programmatic_api() {
    let parsed = dprle_cli::parse_file(
        r#"
        var v1;
        c1 := match(/[\d]+$/);
        c2 := "nid_";
        c3 := match(/'/);
        v1 <= c1;
        c2 . v1 <= c3;
        "#,
    )
    .expect("parses");
    let from_file = solve(&parsed.system, &SolveOptions::default());

    let mut sys = System::new();
    let v1 = sys.var("v1");
    let c1 = sys.constant_regex("c1", "[\\d]+$").expect("compiles");
    let c2 = sys.constant("c2", dprle::automata::Nfa::literal(b"nid_"));
    let c3 = sys.constant_regex("c3", "'").expect("compiles");
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
    let from_api = solve(&sys, &SolveOptions::default());

    let a = from_file.first().expect("sat");
    let b = from_api.first().expect("sat");
    let va = parsed.system.var_id("v1").expect("declared");
    assert!(dprle::automata::equivalent(
        a.get(va).expect("assigned"),
        b.get(v1).expect("assigned")
    ));
}

#[test]
fn solve_first_matches_some_full_solution() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let c1 = sys.constant_regex_exact("c1", "x(yy)+").expect("compiles");
    let c2 = sys.constant_regex_exact("c2", "(yy)*z").expect("compiles");
    let c3 = sys
        .constant_regex_exact("c3", "xyyz|xyyyyz")
        .expect("compiles");
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
    let first = solve_first(&sys, &SolveOptions::default()).expect("sat");
    let all = solve(&sys, &SolveOptions::default());
    assert!(
        all.assignments().iter().any(|a| a.equivalent_to(&first)),
        "the first solution is among the full set"
    );
}

#[test]
fn policies_are_ordered_by_strictness() {
    // Every stacked-query exploit is also a quote exploit.
    assert!(dprle::automata::is_subset(
        Policy::sql_stacked_query().language(),
        Policy::sql_quote().language()
    ));
}

#[test]
fn length_extension_composes_with_analysis_constraints() {
    // Restrict the exploit to at most 6 bytes and check the witness obeys.
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let c1 = sys.constant_regex("c1", "[\\d]+$").expect("compiles");
    let c3 = sys.constant_regex("c3", "'").expect("compiles");
    let c2 = sys.constant("c2", dprle::automata::Nfa::literal(b"nid_"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Const(c2).concat(Expr::Var(v1)), c3);
    sys.require_length(v1, 0, 6);
    let solution = solve(&sys, &SolveOptions::default());
    let w = solution
        .first()
        .expect("sat")
        .witness(v1)
        .expect("nonempty");
    assert!(w.len() <= 6);
    assert!(w.contains(&b'\''));
}
