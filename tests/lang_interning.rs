//! Properties of the interned language layer (`Lang` / `LangStore`):
//! canonical fingerprints decide equivalence, memoized operations agree
//! with the direct constructions, and the solver actually profits from
//! the sharing (the Fig. 9/10 regression below).

use dprle::automata::generate::{random_nfa, RandomNfaConfig};
use dprle::automata::{equivalent, is_subset, ops, Lang, LangStore, Nfa};
use dprle::core::{solve_with_stats, Expr, SolveOptions, System};
use proptest::prelude::*;

fn cfg() -> RandomNfaConfig {
    RandomNfaConfig {
        states: 5,
        edges_per_state: 1.8,
        eps_per_state: 0.4,
        alphabet: vec![b'a', b'b'],
        final_probability: 0.3,
    }
}

fn m(seed: u64) -> Nfa {
    random_nfa(seed, &cfg())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fingerprint equality is exactly language equivalence, with mutual
    /// inclusion checks as the independent oracle.
    #[test]
    fn fingerprint_eq_iff_equivalent(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let (la, lb) = (Lang::new(a.clone()), Lang::new(b.clone()));
        let same_key = la.fingerprint() == lb.fingerprint();
        let same_lang = is_subset(&a, &b) && is_subset(&b, &a);
        prop_assert_eq!(same_key, same_lang);
        prop_assert_eq!(la.same_language(&lb), same_lang);
        // A handle is always equivalent to itself and to a re-wrap of the
        // same machine (fingerprints are canonical, not pointer-based).
        prop_assert!(la.same_language(&Lang::new(la.nfa().clone())));
    }

    /// The store's memoized intersection accepts the same language as the
    /// direct product construction, both on the first (miss) and second
    /// (hit) computation.
    #[test]
    fn store_intersect_matches_direct(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let direct = ops::intersect(&a, &b).nfa;
        let store = LangStore::new();
        let (la, lb) = (Lang::new(a), Lang::new(b));
        let first = store.intersect(&la, &lb);
        prop_assert!(equivalent(&first, &direct));
        let before = store.stats();
        let second = store.intersect(&la, &lb);
        prop_assert!(store.stats().op_hits > before.op_hits, "second lookup memoized");
        prop_assert!(equivalent(&second, &direct));
        // The ablation (pass-through) store agrees as well.
        let plain = LangStore::interning(false);
        prop_assert!(equivalent(&plain.intersect(&la, &lb), &direct));
    }

    /// Memoized inclusion agrees with the direct check, in both orders.
    #[test]
    fn store_is_subset_matches_direct(s in any::<u64>()) {
        let (a, b) = (m(s), m(s.wrapping_add(1)));
        let store = LangStore::new();
        let (la, lb) = (Lang::new(a.clone()), Lang::new(b.clone()));
        prop_assert_eq!(store.is_subset(&la, &lb), is_subset(&a, &b));
        prop_assert_eq!(store.is_subset(&lb, &la), is_subset(&b, &a));
        // And the cached second query returns the same answer.
        prop_assert_eq!(store.is_subset(&la, &lb), is_subset(&a, &b));
    }
}

/// Regression: on the paper's Figure 9/10 shared-variable CI-group, the
/// interned solver must do strictly fewer minimizations than the naive
/// count (one per leaf per disjunct) and must actually hit its caches.
#[test]
fn fig9_group_reuses_minimizations() {
    let exact = |p: &str| {
        dprle::regex::Regex::new(p)
            .expect("compiles")
            .exact_language()
            .clone()
    };
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let ca = sys.constant("ca", exact("o(pp)+"));
    let cb = sys.constant("cb", exact("p*(qq)+"));
    let cc = sys.constant("cc", exact("q*r"));
    let c1 = sys.constant("c1", exact("op{5}q*"));
    let c2 = sys.constant("c2", exact("p*q{4}r"));
    sys.require(Expr::Var(va), ca);
    sys.require(Expr::Var(vb), cb);
    sys.require(Expr::Var(vc), cc);
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

    let (solution, stats) = solve_with_stats(&sys, &SolveOptions::default());
    assert!(
        solution.is_sat(),
        "the paper's Figure 10 system is satisfiable"
    );
    assert!(
        stats.group_disjuncts > 0,
        "the CI-group enumerates disjuncts"
    );

    // The naive count: the ablated (pass-through) solver computes every
    // minimization, intersection, and inclusion directly — one per leaf
    // per disjunct with nothing shared. Its per-run counters are the
    // disjunct-count × leaf-count work the interned solver must beat.
    let (_, naive) = solve_with_stats(
        &sys,
        &SolveOptions {
            interning: false,
            ..Default::default()
        },
    );
    let naive_constructions = naive.fingerprint_misses + naive.memo_op_misses;
    assert!(
        stats.minimizations() < naive_constructions,
        "expected fewer than the naive {} minimizations, measured {}",
        naive_constructions,
        stats.minimizations()
    );
    assert!(
        stats.fingerprint_misses + stats.memo_op_misses < naive_constructions,
        "interning must lower the total direct-construction count \
         ({} + {} vs naive {})",
        stats.fingerprint_misses,
        stats.memo_op_misses,
        naive_constructions
    );
    assert!(
        stats.fingerprint_hits + stats.memo_op_hits > 0,
        "the shared store must register cache hits"
    );
}

/// The ablation mode solves the same system to the same satisfiability
/// without consulting any cache.
#[test]
fn ablation_mode_matches_interned_result() {
    let mut sys = System::new();
    let v = sys.var("v");
    let c = sys.constant_regex_exact("c", "a(bb)+").expect("compiles");
    sys.require(Expr::Var(v), c);
    sys.require(Expr::Var(v).concat(Expr::Var(v)), c);

    let interned = solve_with_stats(&sys, &SolveOptions::default());
    let ablated = solve_with_stats(
        &sys,
        &SolveOptions {
            interning: false,
            ..Default::default()
        },
    );
    assert_eq!(interned.0.is_sat(), ablated.0.is_sat());
    assert_eq!(ablated.1.memo_op_hits, 0, "no memo table in ablation mode");
}
