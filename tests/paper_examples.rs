//! Every worked example in the paper, reproduced through the public API.
//!
//! These tests are the executable record of the expository figures:
//! §3.1.1's two example systems, Figure 4's intermediate machines, Figure 6's
//! dependency graph, and Figures 9–10's mutually dependent concatenations.

use dprle::automata::{equivalent, ops, Nfa};
use dprle::core::ci::{concat_intersect_full, minimal_solutions};
use dprle::core::{satisfies_system, solve, DependencyGraph, Expr, NodeKind, SolveOptions, System};
use dprle::regex::Regex;

fn exact(pattern: &str) -> Nfa {
    Regex::new(pattern)
        .expect("pattern compiles")
        .exact_language()
        .clone()
}

/// §3.1.1, first example: v1 ⊆ (xx)+y, v1 ⊆ x*y.
#[test]
fn section_3_1_1_intersection_example() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let a = sys.constant("a", exact("(xx)+y"));
    let b = sys.constant("b", exact("x*y"));
    sys.require(Expr::Var(v1), a);
    sys.require(Expr::Var(v1), b);
    let solution = solve(&sys, &SolveOptions::default());
    let assignments = solution.assignments();
    assert_eq!(assignments.len(), 1);
    let x1 = assignments[0].get(v1).expect("assigned");
    // "The correct satisfying assignment … is [v1 ↦ L((xx)+y)]."
    assert!(equivalent(x1, &exact("(xx)+y")));
    // The text's rejected candidates: L(xy) is not satisfying; ∅ and
    // L(xxy) are satisfying but not maximal.
    assert!(!x1.contains(b"xy"));
    assert!(x1.contains(b"xxy"));
    assert!(x1.contains(b"xxxxy"));
}

/// §3.1.1, second example: two inherently disjunctive assignments.
#[test]
fn section_3_1_1_disjunctive_example() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let c1 = sys.constant("c1", exact("x(yy)+"));
    let c2 = sys.constant("c2", exact("(yy)*z"));
    let c3 = sys.constant("c3", exact("xyyz|xyyyyz"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
    let solution = solve(&sys, &SolveOptions::default());
    let assignments = solution.assignments();
    assert_eq!(assignments.len(), 2, "A1 and A2");
    // A1 = [v1 ↦ L(xyy), v2 ↦ L(z|yyz)]
    let a1 = assignments
        .iter()
        .find(|a| equivalent(a.get(v1).expect("v1"), &exact("xyy")))
        .expect("A1 present");
    assert!(equivalent(a1.get(v2).expect("v2"), &exact("z|yyz")));
    // A2 = [v1 ↦ L(x(yy|yyyy)), v2 ↦ L(z)]
    let a2 = assignments
        .iter()
        .find(|a| equivalent(a.get(v2).expect("v2"), &exact("z")))
        .expect("A2 present");
    assert!(equivalent(a2.get(v1).expect("v1"), &exact("x(yy|yyyy)")));
    // "It is not possible to merge A1 and A2": the pointwise union is not
    // satisfying.
    let v1_union = ops::union(a1.get(v1).expect("v1"), a2.get(v1).expect("v1"));
    let v2_union = ops::union(a1.get(v2).expect("v2"), a2.get(v2).expect("v2"));
    let merged = ops::concat(&v1_union, &v2_union).nfa;
    assert!(!dprle::automata::is_subset(&merged, sys.const_machine(c3)));
}

/// Figure 4: the worked CI run on the motivating languages, including the
/// intermediate machines M₄ and M₅.
#[test]
fn figure_4_intermediate_machines() {
    let c1 = Nfa::literal(b"nid_");
    let c2 = Regex::new("[\\d]+$")
        .expect("filter")
        .search_language()
        .clone();
    let c3 = Regex::new("'").expect("quote").search_language().clone();
    let run = concat_intersect_full(&c1, &c2, &c3);

    // M₄ = c₁ · c₂ accepts filtered inputs prefixed with nid_.
    assert!(run.m4.contains(b"nid_123"));
    assert!(run.m4.contains(b"nid_' OR 1=1 --9"));
    assert!(!run.m4.contains(b"123"));

    // M₅ = M₄ ∩ c₃ additionally demands a quote.
    assert!(run.m5.contains(b"nid_'9"));
    assert!(!run.m5.contains(b"nid_9"));

    // Q_lhs and Q_rhs are nonempty and the solution is unique modulo
    // language equivalence.
    assert!(!run.qlhs.is_empty() && !run.qrhs.is_empty());
    let solutions = minimal_solutions(run.solutions);
    assert_eq!(solutions.len(), 1);
    assert!(equivalent(&solutions[0].v1, &c1));
    // x₁′′: "all strings that contain a single quote and end with a digit".
    let v2 = &solutions[0].v2;
    assert!(v2.contains(b"' OR 1=1 ; DROP news --9"));
    assert!(!v2.contains(b"1234"));
    assert!(!v2.contains(b"'x"));
}

/// Figure 6: the dependency graph of the running CI system has the six
/// vertices and four edges the picture shows.
#[test]
fn figure_6_dependency_graph() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let c1 = sys.constant("c1", Nfa::literal(b"nid_"));
    let c2 = sys.constant("c2", exact(".*[0-9]"));
    let c3 = sys.constant("c3", exact(".*'.*"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c3);
    let graph = DependencyGraph::from_system(&sys);
    assert_eq!(graph.num_nodes(), 6); // v1 v2 c1 c2 c3 t0
    assert_eq!(graph.subset_edges().len(), 3);
    assert_eq!(graph.concat_edges().len(), 1);
    let t0 = graph.concat_edges()[0].target;
    assert!(matches!(graph.kind(t0), NodeKind::Temp(0)));
    // "There is no forward path through the graph from c3 to v2", yet c3
    // constrains v2 — check the c3 edge targets the temp.
    let c3_node = graph.const_node(c3);
    let targets: Vec<_> = graph
        .subset_edges()
        .iter()
        .filter(|e| e.source == c3_node)
        .map(|e| e.target)
        .collect();
    assert_eq!(targets, vec![t0]);
}

/// Figures 9–10: the CI-group with the shared variable vb; the paper's two
/// reported assignments occur among the solver's output, every output
/// satisfies the system, and the paper's concrete solution languages match.
#[test]
fn figure_9_10_ci_group() {
    let mut sys = System::new();
    let va = sys.var("va");
    let vb = sys.var("vb");
    let vc = sys.var("vc");
    let ca = sys.constant("ca", exact("o(pp)+"));
    let cb = sys.constant("cb", exact("p*(qq)+"));
    let cc = sys.constant("cc", exact("q*r"));
    let c1 = sys.constant("c1", exact("op{5}q*"));
    let c2 = sys.constant("c2", exact("p*q{4}r"));
    sys.require(Expr::Var(va), ca);
    sys.require(Expr::Var(vb), cb);
    sys.require(Expr::Var(vc), cc);
    sys.require(Expr::Var(va).concat(Expr::Var(vb)), c1);
    sys.require(Expr::Var(vb).concat(Expr::Var(vc)), c2);

    let solution = solve(&sys, &SolveOptions::default());
    let assignments = solution.assignments();
    assert!(!assignments.is_empty());
    for a in assignments {
        assert!(satisfies_system(&sys, a));
    }
    // Paper's A1 = [va ↦ op², vb ↦ p³q², vc ↦ q²r].
    assert!(
        assignments.iter().any(|a| {
            equivalent(a.get(va).expect("va"), &exact("op{2}"))
                && equivalent(a.get(vb).expect("vb"), &exact("p{3}q{2}"))
                && equivalent(a.get(vc).expect("vc"), &exact("q{2}r"))
        }),
        "paper's A1 present"
    );
    // Paper's A2 = [va ↦ op⁴, vb ↦ pq², vc ↦ q²r].
    assert!(
        assignments.iter().any(|a| {
            equivalent(a.get(va).expect("va"), &exact("op{4}"))
                && equivalent(a.get(vb).expect("vb"), &exact("pq{2}"))
                && equivalent(a.get(vc).expect("vc"), &exact("q{2}r"))
        }),
        "paper's A2 present"
    );
}

/// §3.4.3's nested tower: (v1·v2)·v3 ⊆ c4 — "the NFAs for v1, v2 and v3
/// will all be represented as sub-NFAs of a single larger NFA"; observable
/// as the final subset constraint affecting all three variables.
#[test]
fn section_3_4_3_nested_concatenation() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let v3 = sys.var("v3");
    let c1 = sys.constant("c1", exact("a*"));
    let c2 = sys.constant("c2", exact("b*"));
    let c3 = sys.constant("c3", exact("c*"));
    let c4 = sys.constant("c4", exact("aabcc"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v3), c3);
    sys.require(
        Expr::Var(v1).concat(Expr::Var(v2)).concat(Expr::Var(v3)),
        c4,
    );
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("sat");
    assert!(equivalent(a.get(v1).expect("v1"), &exact("aa")));
    assert!(equivalent(a.get(v2).expect("v2"), &exact("b")));
    assert!(equivalent(a.get(v3).expect("v3"), &exact("cc")));
}

/// §3.5's two-call example: the system needing two inductive
/// concat-intersect applications solves correctly.
#[test]
fn section_3_5_two_ci_calls() {
    let mut sys = System::new();
    let v1 = sys.var("v1");
    let v2 = sys.var("v2");
    let v3 = sys.var("v3");
    let c1 = sys.constant("c1", exact("a+"));
    let c2 = sys.constant("c2", exact("b+"));
    let c3 = sys.constant("c3", exact("c+"));
    let c4 = sys.constant("c4", exact("ab+"));
    let c5 = sys.constant("c5", exact("abbc"));
    sys.require(Expr::Var(v1), c1);
    sys.require(Expr::Var(v2), c2);
    sys.require(Expr::Var(v3), c3);
    sys.require(Expr::Var(v1).concat(Expr::Var(v2)), c4);
    sys.require(
        Expr::Var(v1).concat(Expr::Var(v2)).concat(Expr::Var(v3)),
        c5,
    );
    let solution = solve(&sys, &SolveOptions::default());
    let a = solution.first().expect("sat");
    assert!(equivalent(a.get(v1).expect("v1"), &exact("a")));
    assert!(equivalent(a.get(v2).expect("v2"), &exact("bb")));
    assert!(equivalent(a.get(v3).expect("v3"), &exact("c")));
}
