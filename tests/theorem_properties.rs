//! Executable analogues of the paper's mechanized correctness theorems.
//!
//! The paper proves the core `concat_intersect` procedure correct in Coq
//! (§3.3): **Regular**, **Satisfying**, and **All Solutions**. A Coq proof
//! is out of scope for this reproduction (see DESIGN.md); instead the three
//! theorem statements are checked here on thousands of randomly generated
//! regular languages, plus an end-to-end satisfiability property for the
//! full RMA solver.

use dprle::automata::generate::{random_nonempty_nfa, RandomNfaConfig};
use dprle::automata::{equivalent, is_subset, ops, Nfa};
use dprle::core::ci::concat_intersect;
use dprle::core::{satisfies_system, solve, SolveOptions};
use dprle::corpus::scaling::{random_system, RandomSystemConfig};
use proptest::prelude::*;

fn machine_config() -> RandomNfaConfig {
    RandomNfaConfig {
        states: 4,
        edges_per_state: 1.6,
        eps_per_state: 0.3,
        alphabet: vec![b'a', b'b'],
        final_probability: 0.3,
    }
}

fn ci_inputs(seed: u64) -> (Nfa, Nfa, Nfa) {
    let cfg = machine_config();
    let c1 = random_nonempty_nfa(seed.wrapping_mul(3), &cfg);
    let c2 = random_nonempty_nfa(seed.wrapping_mul(3) + 1, &cfg);
    let c3 = random_nonempty_nfa(seed.wrapping_mul(3) + 2, &cfg);
    (c1, c2, c3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1 (Regular): every solution machine is a well-formed NFA —
    /// its language operations behave (here: trims to a valid machine and
    /// membership agrees with its own enumeration).
    #[test]
    fn ci_solutions_are_regular(seed in any::<u64>()) {
        let (c1, c2, c3) = ci_inputs(seed);
        for s in concat_intersect(&c1, &c2, &c3) {
            prop_assert!(s.v1.num_states() >= 1);
            prop_assert!(s.v2.num_states() >= 1);
            // Machines denote languages: enumeration and membership agree.
            for w in s.v1.enumerate_upto(b"ab", 3) {
                prop_assert!(s.v1.contains(&w));
            }
        }
    }

    /// Theorem 2 (Satisfying): every solution satisfies the CI constraints
    /// v₁ ⊆ c₁, v₂ ⊆ c₂, v₁·v₂ ⊆ c₃.
    #[test]
    fn ci_solutions_satisfy(seed in any::<u64>()) {
        let (c1, c2, c3) = ci_inputs(seed);
        for s in concat_intersect(&c1, &c2, &c3) {
            prop_assert!(is_subset(&s.v1, &c1), "v1 ⊆ c1 violated");
            prop_assert!(is_subset(&s.v2, &c2), "v2 ⊆ c2 violated");
            let cat = ops::concat(&s.v1, &s.v2).nfa;
            prop_assert!(is_subset(&cat, &c3), "v1·v2 ⊆ c3 violated");
        }
    }

    /// Theorem 3 (All Solutions): the union of v₁·v₂ over all solutions is
    /// exactly (c₁·c₂) ∩ c₃ — no word of the intersection is missed, and
    /// (with Satisfying) nothing extra is covered.
    #[test]
    fn ci_solutions_cover_everything(seed in any::<u64>()) {
        let (c1, c2, c3) = ci_inputs(seed);
        let solutions = concat_intersect(&c1, &c2, &c3);
        let whole = ops::intersect(&ops::concat(&c1, &c2).nfa, &c3).nfa.trim().0;
        let covered: Vec<Nfa> = solutions
            .iter()
            .map(|s| ops::concat(&s.v1, &s.v2).nfa)
            .collect();
        let union = ops::union_all(covered.iter());
        prop_assert!(equivalent(&whole, &union), "coverage mismatch");
    }

    /// The solution count is bounded by |M₃| after normalization times the
    /// epsilon multiplicity (§3.5 gives |M₃| for the paper's single-state
    /// Σ*-style machines; the general bound is |Q_lhs × Q_rhs| pairs).
    #[test]
    fn ci_solution_count_is_bounded(seed in any::<u64>()) {
        let (c1, c2, c3) = ci_inputs(seed);
        let m3_states = c3.normalize().num_states();
        let solutions = concat_intersect(&c1, &c2, &c3);
        prop_assert!(solutions.len() <= m3_states * m3_states);
    }

    /// RMA (whole solver): every assignment returned for a random system
    /// satisfies that system, with constants at full strength.
    #[test]
    fn rma_solutions_satisfy(seed in any::<u64>()) {
        let cfg = RandomSystemConfig {
            vars: 2,
            subset_constraints: 2,
            concat_constraints: 1,
            machine_states: 4,
        };
        let sys = random_system(seed, &cfg);
        // Verification is what we are testing, so switch the solver's own
        // verify filter off and check externally.
        let options = SolveOptions { verify: false, ..Default::default() };
        let solution = solve(&sys, &options);
        for a in solution.assignments() {
            prop_assert!(satisfies_system(&sys, a), "unsound assignment for seed {seed}");
        }
    }

    /// Branch filtering: with `require_nonempty` (the default), no returned
    /// assignment maps a variable to the empty language.
    #[test]
    fn rma_assignments_are_nonempty(seed in any::<u64>()) {
        let cfg = RandomSystemConfig::default();
        let sys = random_system(seed, &cfg);
        let solution = solve(&sys, &SolveOptions::default());
        for a in solution.assignments() {
            prop_assert!(!a.has_empty_language());
        }
    }
}
